#include "sql/interpreter.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <map>
#include <unordered_map>

#include "sql/parser.h"
#include "sql/system_tables.h"

namespace ptldb {

namespace {

// ---------- Name resolution ----------

// Resolves a column reference against a relation's schema. Returns -1 when
// absent; sets `ambiguous` when more than one column matches.
int ResolveColumn(const SqlRelation& relation, const std::string& qualifier,
                  const std::string& name, bool* ambiguous) {
  int found = -1;
  *ambiguous = false;
  for (size_t i = 0; i < relation.columns.size(); ++i) {
    const auto& col = relation.columns[i];
    if (col.name != name) continue;
    if (!qualifier.empty() && col.qualifier != qualifier) continue;
    if (found >= 0) {
      *ambiguous = true;
      return found;
    }
    found = static_cast<int>(i);
  }
  return found;
}

// True when every column reference in `expr` resolves in `relation`
// (uniquely). Star expressions never "resolve" here (handled separately).
bool ExprResolvesIn(const SqlExpr& expr, const SqlRelation& relation) {
  switch (expr.kind) {
    case SqlExprKind::kColumn: {
      bool ambiguous = false;
      const int idx =
          ResolveColumn(relation, expr.table, expr.column, &ambiguous);
      return idx >= 0 && !ambiguous;
    }
    case SqlExprKind::kStar:
      return false;
    case SqlExprKind::kInteger:
    case SqlExprKind::kString:
    case SqlExprKind::kParameter:
      return true;
    case SqlExprKind::kBinary:
      return ExprResolvesIn(*expr.lhs, relation) &&
             ExprResolvesIn(*expr.rhs, relation);
    case SqlExprKind::kFunction:
      for (const auto& arg : expr.args) {
        if (!ExprResolvesIn(*arg, relation)) return false;
      }
      return true;
    case SqlExprKind::kSlice:
      return ExprResolvesIn(*expr.lhs, relation) &&
             ExprResolvesIn(*expr.slice_lo, relation) &&
             ExprResolvesIn(*expr.slice_hi, relation);
  }
  return false;
}

bool ExprReferencesAnyColumn(const SqlExpr& expr) {
  switch (expr.kind) {
    case SqlExprKind::kColumn:
    case SqlExprKind::kStar:
      return true;
    case SqlExprKind::kInteger:
    case SqlExprKind::kString:
    case SqlExprKind::kParameter:
      return false;
    case SqlExprKind::kBinary:
      return ExprReferencesAnyColumn(*expr.lhs) ||
             ExprReferencesAnyColumn(*expr.rhs);
    case SqlExprKind::kFunction:
      for (const auto& arg : expr.args) {
        if (ExprReferencesAnyColumn(*arg)) return true;
      }
      return false;
    case SqlExprKind::kSlice:
      return ExprReferencesAnyColumn(*expr.lhs) ||
             ExprReferencesAnyColumn(*expr.slice_lo) ||
             ExprReferencesAnyColumn(*expr.slice_hi);
  }
  return false;
}

bool ContainsAggregate(const SqlExpr& expr) {
  if (expr.kind == SqlExprKind::kFunction &&
      (expr.function == "MIN" || expr.function == "MAX")) {
    return true;
  }
  switch (expr.kind) {
    case SqlExprKind::kBinary:
      return ContainsAggregate(*expr.lhs) || ContainsAggregate(*expr.rhs);
    case SqlExprKind::kFunction:
      for (const auto& arg : expr.args) {
        if (ContainsAggregate(*arg)) return true;
      }
      return false;
    case SqlExprKind::kSlice:
      return ContainsAggregate(*expr.lhs) ||
             ContainsAggregate(*expr.slice_lo) ||
             ContainsAggregate(*expr.slice_hi);
    default:
      return false;
  }
}

bool ContainsUnnest(const SqlExpr& expr) {
  if (expr.kind == SqlExprKind::kFunction && expr.function == "UNNEST") {
    return true;
  }
  if (expr.kind == SqlExprKind::kBinary) {
    return ContainsUnnest(*expr.lhs) || ContainsUnnest(*expr.rhs);
  }
  return false;
}

// ---------- Expression evaluation ----------

struct EvalContext {
  const SqlRelation* relation = nullptr;
  const SqlRow* row = nullptr;
  const std::vector<int64_t>* params = nullptr;
  // Pre-computed values for aggregate sub-expressions (grouped queries).
  const std::map<const SqlExpr*, SqlValue>* aggregates = nullptr;
};

Result<SqlValue> EvalExpr(const SqlExpr& expr, const EvalContext& ctx);

Result<int64_t> EvalInt(const SqlExpr& expr, const EvalContext& ctx,
                        bool* is_null) {
  auto value = EvalExpr(expr, ctx);
  if (!value.ok()) return value.status();
  if (SqlIsNull(*value)) {
    *is_null = true;
    return int64_t{0};
  }
  if (!std::holds_alternative<int64_t>(*value)) {
    return Status::InvalidArgument("expected an integer expression");
  }
  *is_null = false;
  return std::get<int64_t>(*value);
}

Result<SqlValue> EvalExpr(const SqlExpr& expr, const EvalContext& ctx) {
  if (ctx.aggregates != nullptr) {
    const auto it = ctx.aggregates->find(&expr);
    if (it != ctx.aggregates->end()) return it->second;
  }
  switch (expr.kind) {
    case SqlExprKind::kInteger:
      return SqlValue(expr.value);
    case SqlExprKind::kString:
      return SqlValue(expr.text);
    case SqlExprKind::kParameter: {
      const auto index = static_cast<size_t>(expr.value - 1);
      if (ctx.params == nullptr || index >= ctx.params->size()) {
        return Status::InvalidArgument("parameter $" +
                                       std::to_string(expr.value) +
                                       " not bound");
      }
      return SqlValue((*ctx.params)[index]);
    }
    case SqlExprKind::kColumn: {
      bool ambiguous = false;
      const int idx =
          ResolveColumn(*ctx.relation, expr.table, expr.column, &ambiguous);
      if (ambiguous) {
        return Status::InvalidArgument("ambiguous column " + expr.column);
      }
      if (idx < 0) {
        return Status::InvalidArgument("unknown column " +
                                       (expr.table.empty()
                                            ? expr.column
                                            : expr.table + "." + expr.column));
      }
      return (*ctx.row)[static_cast<size_t>(idx)];
    }
    case SqlExprKind::kStar:
      return Status::InvalidArgument("'*' is only valid in a select list");
    case SqlExprKind::kBinary: {
      if (expr.op == SqlBinaryOp::kAnd || expr.op == SqlBinaryOp::kOr) {
        bool lhs_null = false;
        bool rhs_null = false;
        auto lhs = EvalInt(*expr.lhs, ctx, &lhs_null);
        if (!lhs.ok()) return lhs.status();
        auto rhs = EvalInt(*expr.rhs, ctx, &rhs_null);
        if (!rhs.ok()) return rhs.status();
        const bool a = !lhs_null && *lhs != 0;
        const bool b = !rhs_null && *rhs != 0;
        return SqlValue(static_cast<int64_t>(
            expr.op == SqlBinaryOp::kAnd ? (a && b) : (a || b)));
      }
      const bool is_comparison =
          expr.op == SqlBinaryOp::kEq || expr.op == SqlBinaryOp::kNe ||
          expr.op == SqlBinaryOp::kLt || expr.op == SqlBinaryOp::kLe ||
          expr.op == SqlBinaryOp::kGt || expr.op == SqlBinaryOp::kGe;
      if (is_comparison) {
        // Comparisons are typed: integers to integers, text to text
        // (system-table columns are text), no implicit casts between them.
        auto lv = EvalExpr(*expr.lhs, ctx);
        if (!lv.ok()) return lv;
        auto rv = EvalExpr(*expr.rhs, ctx);
        if (!rv.ok()) return rv;
        if (SqlIsNull(*lv) || SqlIsNull(*rv)) return SqlValue();
        int cmp = 0;
        if (std::holds_alternative<int64_t>(*lv) &&
            std::holds_alternative<int64_t>(*rv)) {
          const int64_t a = std::get<int64_t>(*lv);
          const int64_t b = std::get<int64_t>(*rv);
          cmp = a < b ? -1 : (a > b ? 1 : 0);
        } else if (std::holds_alternative<std::string>(*lv) &&
                   std::holds_alternative<std::string>(*rv)) {
          const int c = std::get<std::string>(*lv).compare(
              std::get<std::string>(*rv));
          cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
        } else {
          return Status::InvalidArgument(
              "cannot compare values of different types");
        }
        bool truth = false;
        switch (expr.op) {
          case SqlBinaryOp::kEq: truth = cmp == 0; break;
          case SqlBinaryOp::kNe: truth = cmp != 0; break;
          case SqlBinaryOp::kLt: truth = cmp < 0; break;
          case SqlBinaryOp::kLe: truth = cmp <= 0; break;
          case SqlBinaryOp::kGt: truth = cmp > 0; break;
          case SqlBinaryOp::kGe: truth = cmp >= 0; break;
          default: break;
        }
        return SqlValue(static_cast<int64_t>(truth));
      }
      bool lhs_null = false;
      bool rhs_null = false;
      auto lhs = EvalInt(*expr.lhs, ctx, &lhs_null);
      if (!lhs.ok()) return lhs.status();
      auto rhs = EvalInt(*expr.rhs, ctx, &rhs_null);
      if (!rhs.ok()) return rhs.status();
      if (lhs_null || rhs_null) return SqlValue();  // SQL NULL propagation.
      switch (expr.op) {
        case SqlBinaryOp::kAdd:
          return SqlValue(*lhs + *rhs);
        case SqlBinaryOp::kSub:
          return SqlValue(*lhs - *rhs);
        case SqlBinaryOp::kDiv:
          if (*rhs == 0) return Status::InvalidArgument("division by zero");
          return SqlValue(*lhs / *rhs);
        case SqlBinaryOp::kEq:
        case SqlBinaryOp::kNe:
        case SqlBinaryOp::kLt:
        case SqlBinaryOp::kLe:
        case SqlBinaryOp::kGt:
        case SqlBinaryOp::kGe:
        case SqlBinaryOp::kAnd:
        case SqlBinaryOp::kOr:
          break;  // Handled above.
      }
      return Status::Internal("unhandled binary operator");
    }
    case SqlExprKind::kFunction: {
      if (expr.function == "FLOOR") {
        if (expr.args.size() != 1) {
          return Status::InvalidArgument("FLOOR takes one argument");
        }
        // Integer division in this dialect already truncates; operands in
        // PTLDB queries are non-negative, so FLOOR is the identity.
        return EvalExpr(*expr.args[0], ctx);
      }
      if (expr.function == "LEAST" || expr.function == "GREATEST") {
        std::optional<int64_t> best;
        for (const auto& arg : expr.args) {
          bool is_null = false;
          auto v = EvalInt(*arg, ctx, &is_null);
          if (!v.ok()) return v.status();
          if (is_null) continue;
          if (!best || (expr.function == "LEAST" ? *v < *best : *v > *best)) {
            best = *v;
          }
        }
        if (!best) return SqlValue();
        return SqlValue(*best);
      }
      if (expr.function == "MIN" || expr.function == "MAX") {
        return Status::InvalidArgument(
            "aggregate used outside an aggregation context");
      }
      if (expr.function == "UNNEST") {
        return Status::InvalidArgument(
            "UNNEST is only valid at the top of a select item");
      }
      return Status::Unsupported("function " + expr.function);
    }
    case SqlExprKind::kSlice: {
      auto base = EvalExpr(*expr.lhs, ctx);
      if (!base.ok()) return base;
      if (SqlIsNull(*base)) return SqlValue();
      if (!std::holds_alternative<std::vector<int32_t>>(*base)) {
        return Status::InvalidArgument("slice of a non-array value");
      }
      bool lo_null = false;
      bool hi_null = false;
      auto lo = EvalInt(*expr.slice_lo, ctx, &lo_null);
      if (!lo.ok()) return lo.status();
      auto hi = EvalInt(*expr.slice_hi, ctx, &hi_null);
      if (!hi.ok()) return hi.status();
      if (lo_null || hi_null) return SqlValue();
      const auto& arr = std::get<std::vector<int32_t>>(*base);
      // PostgreSQL slices are 1-based and clamp to the array bounds.
      const int64_t first = std::max<int64_t>(1, *lo);
      const int64_t last =
          std::min<int64_t>(static_cast<int64_t>(arr.size()), *hi);
      std::vector<int32_t> out;
      for (int64_t i = first; i <= last; ++i) {
        out.push_back(arr[static_cast<size_t>(i - 1)]);
      }
      return SqlValue(std::move(out));
    }
  }
  return Status::Internal("unhandled expression kind");
}

// ---------- Execution ----------

class Executor {
 public:
  Executor(EngineDatabase* db, const SystemTableCatalog* system_tables,
           const std::vector<int64_t>& params, QueryTrace* trace)
      : db_(db),
        system_tables_(system_tables),
        params_(params),
        trace_(trace) {}

  Result<SqlRelation> Run(const SqlSelect& select) {
    for (const auto& [name, body] : select.ctes) {
      ScopedEngineSpan span(trace_, db_, "cte " + name);
      auto relation = RunCompound(*body);
      if (!relation.ok()) return relation;
      span.AddStat("rows", relation->rows.size());
      ctes_[name] = std::move(*relation);
    }
    return RunCompound(select);
  }

 private:
  // A select plus its UNION chain.
  Result<SqlRelation> RunCompound(const SqlSelect& select) {
    auto head = RunSimple(select);
    if (!head.ok()) return head;
    const SqlSelect* current = &select;
    while (current->union_next != nullptr) {
      const bool all = current->union_all;
      current = current->union_next.get();
      auto next = RunSimple(*current);
      if (!next.ok()) return next;
      if (next->columns.size() != head->columns.size()) {
        return Status::InvalidArgument("UNION arity mismatch");
      }
      head->rows.insert(head->rows.end(),
                        std::make_move_iterator(next->rows.begin()),
                        std::make_move_iterator(next->rows.end()));
      if (!all) Deduplicate(&head->rows);
    }
    return head;
  }

  static void Deduplicate(std::vector<SqlRow>* rows) {
    std::sort(rows->begin(), rows->end());
    rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
  }

  // Loads a base table / CTE as a relation qualified by `alias`.
  Result<SqlRelation> LoadSource(const SqlTableRef& ref) {
    SqlRelation relation;
    if (ref.subquery != nullptr) {
      ScopedEngineSpan span(trace_, db_, "subquery");
      auto inner = RunCompound(*ref.subquery);
      if (!inner.ok()) return inner;
      span.AddStat("rows", inner->rows.size());
      relation = std::move(*inner);
    } else if (const auto it = ctes_.find(ref.table); it != ctes_.end()) {
      relation = it->second;
    } else if (const EngineTable* table = db_->FindTable(ref.table)) {
      ScopedEngineSpan span(trace_, db_, "scan " + ref.table);
      const Schema& schema = table->schema();
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        relation.columns.push_back({"", schema.column(i).name});
      }
      auto cursor =
          table->Seek(std::numeric_limits<IndexKey>::min(), db_->buffer_pool());
      while (cursor.Valid()) {
        auto row = cursor.row();
        PTLDB_RETURN_IF_ERROR(row.status());
        SqlRow out;
        out.reserve(row->size());
        for (size_t i = 0; i < row->size(); ++i) {
          if (schema.column(i).type == ColumnType::kInt32) {
            out.emplace_back(static_cast<int64_t>((*row)[i].AsInt()));
          } else {
            out.emplace_back((*row)[i].AsArray());
          }
        }
        relation.rows.push_back(std::move(out));
        cursor.Next();
      }
      // A faulted scan ends like a clean one; the cursor status tells
      // them apart.
      PTLDB_RETURN_IF_ERROR(cursor.status());
      span.AddStat("rows", relation.rows.size());
    } else if (system_tables_ != nullptr &&
               SystemTableCatalog::IsSystemTable(ref.table)) {
      // Virtual system tables materialize from live registry/ring state
      // and then flow through the same projection/filter/join machinery
      // as engine tables.
      ScopedEngineSpan span(trace_, db_, "system " + ref.table);
      auto system = system_tables_->Load(ref.table);
      if (!system.ok()) return system;
      relation = std::move(*system);
      span.AddStat("rows", relation.rows.size());
    } else {
      return Status::NotFound("unknown table " + ref.table);
    }
    for (auto& col : relation.columns) col.qualifier = ref.alias;
    return relation;
  }

  // Evaluates a predicate to a boolean on one row (NULL -> false).
  Result<bool> EvalPredicate(const SqlExpr& expr, const SqlRelation& relation,
                             const SqlRow& row) {
    EvalContext ctx{&relation, &row, &params_, nullptr};
    auto value = EvalExpr(expr, ctx);
    if (!value.ok()) return value.status();
    if (SqlIsNull(*value)) return false;
    if (!std::holds_alternative<int64_t>(*value)) {
      return Status::InvalidArgument("predicate is not boolean");
    }
    return std::get<int64_t>(*value) != 0;
  }

  Status FilterInPlace(const SqlExpr& expr, SqlRelation* relation) {
    std::vector<SqlRow> kept;
    kept.reserve(relation->rows.size());
    for (auto& row : relation->rows) {
      auto pass = EvalPredicate(expr, *relation, row);
      if (!pass.ok()) return pass.status();
      if (*pass) kept.push_back(std::move(row));
    }
    relation->rows = std::move(kept);
    return Status::Ok();
  }

  // FROM clause: load sources, push single-source conjuncts, join with
  // hash-equi-joins where the WHERE clause provides equality keys.
  Result<SqlRelation> BuildFromRelation(const SqlSelect& select,
                                        std::vector<const SqlExpr*>* residual) {
    // Collect WHERE conjuncts.
    std::vector<const SqlExpr*> conjuncts;
    CollectConjuncts(select.where.get(), &conjuncts);
    std::vector<bool> used(conjuncts.size(), false);

    if (select.from.empty()) {
      SqlRelation relation;
      relation.rows.emplace_back();  // One empty row (SELECT 1+1 style).
      for (size_t c = 0; c < conjuncts.size(); ++c) residual->push_back(conjuncts[c]);
      return relation;
    }

    SqlRelation combined;
    for (size_t s = 0; s < select.from.size(); ++s) {
      auto next = LoadSource(select.from[s]);
      if (!next.ok()) return next;
      // Push down conjuncts that fully resolve in this source alone.
      for (size_t c = 0; c < conjuncts.size(); ++c) {
        if (used[c] || !ExprReferencesAnyColumn(*conjuncts[c])) continue;
        if (ExprResolvesIn(*conjuncts[c], *next)) {
          PTLDB_RETURN_IF_ERROR(FilterInPlace(*conjuncts[c], &*next));
          used[c] = true;
        }
      }
      if (s == 0) {
        combined = std::move(*next);
        continue;
      }
      // Hash keys: conjuncts "a = b" with one side in `combined` and the
      // other in `next`.
      std::vector<const SqlExpr*> left_keys;
      std::vector<const SqlExpr*> right_keys;
      for (size_t c = 0; c < conjuncts.size(); ++c) {
        if (used[c]) continue;
        const SqlExpr* e = conjuncts[c];
        if (e->kind != SqlExprKind::kBinary || e->op != SqlBinaryOp::kEq) {
          continue;
        }
        if (ExprResolvesIn(*e->lhs, combined) &&
            ExprResolvesIn(*e->rhs, *next)) {
          left_keys.push_back(e->lhs.get());
          right_keys.push_back(e->rhs.get());
          used[c] = true;
        } else if (ExprResolvesIn(*e->rhs, combined) &&
                   ExprResolvesIn(*e->lhs, *next)) {
          left_keys.push_back(e->rhs.get());
          right_keys.push_back(e->lhs.get());
          used[c] = true;
        }
      }
      auto joined = HashJoin(combined, *next, left_keys, right_keys);
      if (!joined.ok()) return joined;
      combined = std::move(*joined);
    }
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (!used[c]) residual->push_back(conjuncts[c]);
    }
    return combined;
  }

  static void CollectConjuncts(const SqlExpr* expr,
                               std::vector<const SqlExpr*>* out) {
    if (expr == nullptr) return;
    if (expr->kind == SqlExprKind::kBinary && expr->op == SqlBinaryOp::kAnd) {
      CollectConjuncts(expr->lhs.get(), out);
      CollectConjuncts(expr->rhs.get(), out);
      return;
    }
    out->push_back(expr);
  }

  Result<SqlRelation> HashJoin(const SqlRelation& left,
                               const SqlRelation& right,
                               const std::vector<const SqlExpr*>& left_keys,
                               const std::vector<const SqlExpr*>& right_keys) {
    ScopedEngineSpan span(trace_, db_,
                          left_keys.empty() ? "cross join" : "hash join");
    SqlRelation out;
    out.columns = left.columns;
    out.columns.insert(out.columns.end(), right.columns.begin(),
                       right.columns.end());
    const auto key_of = [&](const SqlRelation& rel, const SqlRow& row,
                            const std::vector<const SqlExpr*>& keys)
        -> Result<std::optional<std::vector<int64_t>>> {
      std::vector<int64_t> key;
      key.reserve(keys.size());
      for (const SqlExpr* e : keys) {
        EvalContext ctx{&rel, &row, &params_, nullptr};
        auto v = EvalExpr(*e, ctx);
        if (!v.ok()) return v.status();
        if (SqlIsNull(*v)) return std::optional<std::vector<int64_t>>();
        if (!std::holds_alternative<int64_t>(*v)) {
          return Status::InvalidArgument("hash-join keys must be integers");
        }
        key.push_back(std::get<int64_t>(*v));
      }
      return std::optional<std::vector<int64_t>>(std::move(key));
    };

    if (left_keys.empty()) {  // Plain cross join.
      for (const auto& l : left.rows) {
        for (const auto& r : right.rows) {
          SqlRow row = l;
          row.insert(row.end(), r.begin(), r.end());
          out.rows.push_back(std::move(row));
        }
      }
      span.AddStat("rows", out.rows.size());
      return out;
    }

    std::map<std::vector<int64_t>, std::vector<const SqlRow*>> table;
    for (const auto& r : right.rows) {
      auto key = key_of(right, r, right_keys);
      if (!key.ok()) return key.status();
      if (*key) table[**key].push_back(&r);
    }
    for (const auto& l : left.rows) {
      auto key = key_of(left, l, left_keys);
      if (!key.ok()) return key.status();
      if (!*key) continue;
      const auto it = table.find(**key);
      if (it == table.end()) continue;
      for (const SqlRow* r : it->second) {
        SqlRow row = l;
        row.insert(row.end(), r->begin(), r->end());
        out.rows.push_back(std::move(row));
      }
    }
    span.AddStat("rows", out.rows.size());
    return out;
  }

  // Expands star items and UNNEST items into a projected relation; the
  // returned schema carries the output aliases (unqualified).
  Result<SqlRelation> Project(const SqlSelect& select,
                              const SqlRelation& input) {
    // Expand the item list: stars become column refs.
    struct OutItem {
      const SqlExpr* expr = nullptr;  // Null for expanded star columns.
      int input_column = -1;          // For star expansion.
      std::string name;
    };
    std::vector<OutItem> out_items;
    for (const auto& item : select.items) {
      if (item.expr->kind == SqlExprKind::kStar) {
        for (size_t i = 0; i < input.columns.size(); ++i) {
          if (!item.expr->table.empty() &&
              input.columns[i].qualifier != item.expr->table) {
            continue;
          }
          out_items.push_back(
              {nullptr, static_cast<int>(i), input.columns[i].name});
        }
        continue;
      }
      std::string name = item.alias;
      if (name.empty()) {
        if (item.expr->kind == SqlExprKind::kColumn) {
          name = item.expr->column;
        } else if (item.expr->kind == SqlExprKind::kFunction) {
          name = item.expr->function;
          std::transform(name.begin(), name.end(), name.begin(),
                         [](unsigned char c) { return std::tolower(c); });
        } else {
          name = "?column?";
        }
      }
      out_items.push_back({item.expr.get(), -1, std::move(name)});
    }

    SqlRelation out;
    for (const auto& item : out_items) out.columns.push_back({"", item.name});

    for (const auto& row : input.rows) {
      EvalContext ctx{&input, &row, &params_, nullptr};
      // Evaluate UNNEST arrays (top-level function) per item.
      std::vector<SqlValue> scalars(out_items.size());
      std::vector<std::optional<std::vector<int32_t>>> unnests(
          out_items.size());
      size_t fanout = 1;
      bool any_unnest = false;
      for (size_t i = 0; i < out_items.size(); ++i) {
        const OutItem& item = out_items[i];
        if (item.expr == nullptr) {
          scalars[i] = row[static_cast<size_t>(item.input_column)];
          continue;
        }
        if (item.expr->kind == SqlExprKind::kFunction &&
            item.expr->function == "UNNEST") {
          if (item.expr->args.size() != 1) {
            return Status::InvalidArgument("UNNEST takes one argument");
          }
          auto arr = EvalExpr(*item.expr->args[0], ctx);
          if (!arr.ok()) return arr.status();
          if (SqlIsNull(*arr)) {
            unnests[i].emplace();  // NULL array unnests to zero rows.
          } else if (!std::holds_alternative<std::vector<int32_t>>(*arr)) {
            return Status::InvalidArgument("UNNEST of a non-array value");
          } else {
            unnests[i] = std::get<std::vector<int32_t>>(std::move(*arr));
          }
          any_unnest = true;
          fanout = std::max(fanout, unnests[i]->size());
          continue;
        }
        auto value = EvalExpr(*item.expr, ctx);
        if (!value.ok()) return value.status();
        scalars[i] = std::move(*value);
      }
      if (any_unnest) {
        // PostgreSQL parallel unnesting: shorter arrays pad with NULL.
        size_t max_len = 0;
        for (const auto& u : unnests) {
          if (u) max_len = std::max(max_len, u->size());
        }
        for (size_t e = 0; e < max_len; ++e) {
          SqlRow out_row(out_items.size());
          for (size_t i = 0; i < out_items.size(); ++i) {
            if (unnests[i]) {
              out_row[i] = e < unnests[i]->size()
                               ? SqlValue(static_cast<int64_t>(
                                     (*unnests[i])[e]))
                               : SqlValue();
            } else {
              out_row[i] = scalars[i];
            }
          }
          out.rows.push_back(std::move(out_row));
        }
      } else {
        out.rows.push_back(std::move(scalars));
      }
    }
    return out;
  }

  // Rewrites a bare output-alias reference to the aliased expression
  // (PostgreSQL resolves GROUP BY / ORDER BY names against the select list
  // first). Returns the original expression when no alias matches.
  const SqlExpr* ResolveAlias(const SqlExpr* expr, const SqlSelect& select) {
    if (expr->kind != SqlExprKind::kColumn || !expr->table.empty()) {
      return expr;
    }
    for (const auto& item : select.items) {
      if (item.alias == expr->column) return item.expr.get();
    }
    return expr;
  }

  Result<SqlRelation> RunSimple(const SqlSelect& select) {
    std::vector<const SqlExpr*> residual;
    auto input = BuildFromRelation(select, &residual);
    if (!input.ok()) return input;
    if (!residual.empty()) {
      ScopedEngineSpan span(trace_, db_, "filter");
      for (const SqlExpr* conjunct : residual) {
        PTLDB_RETURN_IF_ERROR(FilterInPlace(*conjunct, &*input));
      }
      span.AddStat("rows", input->rows.size());
    }

    // Does anything aggregate?
    bool has_aggregate = !select.group_by.empty();
    for (const auto& item : select.items) {
      if (item.expr->kind != SqlExprKind::kStar &&
          ContainsAggregate(*item.expr)) {
        has_aggregate = true;
      }
    }

    SqlRelation projected;
    if (has_aggregate) {
      ScopedEngineSpan span(trace_, db_, "aggregate");
      auto grouped = RunGrouped(select, *input);
      if (!grouped.ok()) return grouped;
      projected = std::move(*grouped);
      span.AddStat("rows", projected.rows.size());
    } else {
      // UNNEST / plain projection path with post-projection ORDER BY.
      bool has_unnest = false;
      for (const auto& item : select.items) {
        if (item.expr->kind == SqlExprKind::kFunction &&
            item.expr->function == "UNNEST") {
          has_unnest = true;
        }
      }
      {
        ScopedEngineSpan span(trace_, db_, has_unnest ? "unnest" : "project");
        auto plain = Project(select, *input);
        if (!plain.ok()) return plain;
        projected = std::move(*plain);
        span.AddStat("rows", projected.rows.size());
      }
      if (!select.order_by.empty()) {
        ScopedEngineSpan span(trace_, db_, "sort");
        PTLDB_RETURN_IF_ERROR(SortRelation(select, &projected));
      }
    }
    if (select.limit != nullptr) {
      EvalContext ctx{nullptr, nullptr, &params_, nullptr};
      bool is_null = false;
      auto limit = EvalInt(*select.limit, ctx, &is_null);
      if (!limit.ok()) return limit.status();
      if (!is_null && *limit >= 0 &&
          projected.rows.size() > static_cast<size_t>(*limit)) {
        projected.rows.resize(static_cast<size_t>(*limit));
      }
    }
    return projected;
  }

  // Sorts a projected relation by the ORDER BY list (which may only
  // reference output columns here).
  Status SortRelation(const SqlSelect& select, SqlRelation* relation) {
    struct Key {
      SqlRow values;
      size_t index;
    };
    std::vector<Key> keys;
    keys.reserve(relation->rows.size());
    for (size_t r = 0; r < relation->rows.size(); ++r) {
      SqlRow values;
      for (const auto& order : select.order_by) {
        EvalContext ctx{relation, &relation->rows[r], &params_, nullptr};
        auto v = EvalExpr(*order.expr, ctx);
        if (!v.ok()) return v.status();
        values.push_back(std::move(*v));
      }
      keys.push_back({std::move(values), r});
    }
    std::stable_sort(keys.begin(), keys.end(), [&](const Key& a,
                                                   const Key& b) {
      for (size_t i = 0; i < select.order_by.size(); ++i) {
        if (a.values[i] == b.values[i]) continue;
        const bool less = a.values[i] < b.values[i];
        return select.order_by[i].descending ? !less : less;
      }
      return false;
    });
    std::vector<SqlRow> sorted;
    sorted.reserve(relation->rows.size());
    for (const Key& k : keys) {
      sorted.push_back(std::move(relation->rows[k.index]));
    }
    relation->rows = std::move(sorted);
    return Status::Ok();
  }

  // GROUP BY / global aggregation. Handles aggregate expressions in the
  // select list and ORDER BY, with output-alias resolution.
  Result<SqlRelation> RunGrouped(const SqlSelect& select,
                                 const SqlRelation& input) {
    // Group key expressions (alias-resolved).
    std::vector<const SqlExpr*> key_exprs;
    for (const auto& g : select.group_by) {
      key_exprs.push_back(ResolveAlias(g.get(), select));
    }

    // Partition rows by key.
    std::map<SqlRow, std::vector<const SqlRow*>> groups;
    for (const auto& row : input.rows) {
      SqlRow key;
      for (const SqlExpr* e : key_exprs) {
        EvalContext ctx{&input, &row, &params_, nullptr};
        auto v = EvalExpr(*e, ctx);
        if (!v.ok()) return v.status();
        key.push_back(std::move(*v));
      }
      groups[std::move(key)].push_back(&row);
    }
    // A global aggregate (no GROUP BY) over zero rows yields one group.
    if (select.group_by.empty() && groups.empty()) {
      groups[{}] = {};
    }

    // Aggregate expressions appearing anywhere in the outputs or ordering.
    std::vector<const SqlExpr*> agg_exprs;
    const auto collect_aggs = [&](const SqlExpr* e, auto&& self) -> void {
      if (e->kind == SqlExprKind::kFunction &&
          (e->function == "MIN" || e->function == "MAX")) {
        agg_exprs.push_back(e);
        return;
      }
      if (e->kind == SqlExprKind::kBinary) {
        self(e->lhs.get(), self);
        self(e->rhs.get(), self);
      } else if (e->kind == SqlExprKind::kFunction) {
        for (const auto& a : e->args) self(a.get(), self);
      }
    };
    for (const auto& item : select.items) {
      collect_aggs(item.expr.get(), collect_aggs);
    }
    for (const auto& order : select.order_by) {
      collect_aggs(ResolveAlias(order.expr.get(), select), collect_aggs);
    }

    SqlRelation out;
    for (const auto& item : select.items) {
      std::string name = item.alias;
      if (name.empty()) {
        name = item.expr->kind == SqlExprKind::kColumn ? item.expr->column
                                                       : "?column?";
      }
      out.columns.push_back({"", name});
    }

    struct GroupRow {
      SqlRow output;
      SqlRow order_keys;
    };
    std::vector<GroupRow> group_rows;
    for (const auto& [key, rows] : groups) {
      // Compute every aggregate over the group.
      std::map<const SqlExpr*, SqlValue> agg_values;
      for (const SqlExpr* agg : agg_exprs) {
        std::optional<int64_t> best;
        for (const SqlRow* row : rows) {
          EvalContext ctx{&input, row, &params_, nullptr};
          bool is_null = false;
          auto v = EvalInt(*agg->args[0], ctx, &is_null);
          if (!v.ok()) return v.status();
          if (is_null) continue;
          if (!best || (agg->function == "MIN" ? *v < *best : *v > *best)) {
            best = *v;
          }
        }
        agg_values[agg] = best ? SqlValue(*best) : SqlValue();
      }
      const SqlRow* sample = rows.empty() ? nullptr : rows.front();
      const SqlRow empty_row;
      EvalContext ctx{&input, sample != nullptr ? sample : &empty_row,
                      &params_, &agg_values};

      GroupRow group_row;
      for (const auto& item : select.items) {
        if (sample == nullptr && !ContainsAggregate(*item.expr)) {
          group_row.output.emplace_back();  // NULL for empty global group.
          continue;
        }
        auto v = EvalExpr(*item.expr, ctx);
        if (!v.ok()) return v.status();
        group_row.output.push_back(std::move(*v));
      }
      for (const auto& order : select.order_by) {
        const SqlExpr* e = ResolveAlias(order.expr.get(), select);
        auto v = EvalExpr(*e, ctx);
        if (!v.ok()) return v.status();
        group_row.order_keys.push_back(std::move(*v));
      }
      group_rows.push_back(std::move(group_row));
    }

    if (!select.order_by.empty()) {
      std::stable_sort(
          group_rows.begin(), group_rows.end(),
          [&](const GroupRow& a, const GroupRow& b) {
            for (size_t i = 0; i < select.order_by.size(); ++i) {
              if (a.order_keys[i] == b.order_keys[i]) continue;
              const bool less = a.order_keys[i] < b.order_keys[i];
              return select.order_by[i].descending ? !less : less;
            }
            return false;
          });
    }
    for (auto& g : group_rows) out.rows.push_back(std::move(g.output));
    return out;
  }

  EngineDatabase* db_;
  const SystemTableCatalog* system_tables_;  // Null = unavailable.
  const std::vector<int64_t>& params_;
  QueryTrace* trace_;  // Null = tracing off.
  std::map<std::string, SqlRelation> ctes_;
};

// Matches an `EXPLAIN ANALYZE` prefix (case-insensitive, any whitespace)
// and returns the statement after it, or nullopt when not present.
std::optional<std::string> StripExplainAnalyze(const std::string& sql) {
  const auto skip_spaces = [&](size_t i) {
    while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
      ++i;
    }
    return i;
  };
  const auto match_word = [&](size_t i, const char* word) -> size_t {
    size_t j = 0;
    while (word[j] != '\0') {
      if (i + j >= sql.size() ||
          std::toupper(static_cast<unsigned char>(sql[i + j])) != word[j]) {
        return std::string::npos;
      }
      ++j;
    }
    // The keyword must end at a word boundary.
    if (i + j < sql.size() &&
        std::isalnum(static_cast<unsigned char>(sql[i + j]))) {
      return std::string::npos;
    }
    return i + j;
  };
  size_t i = skip_spaces(0);
  i = match_word(i, "EXPLAIN");
  if (i == std::string::npos) return std::nullopt;
  i = skip_spaces(i);
  i = match_word(i, "ANALYZE");
  if (i == std::string::npos) return std::nullopt;
  return sql.substr(i);
}

// Renders a trace as the single-column "QUERY PLAN" relation (one text
// row per span line), PostgreSQL style.
SqlRelation RenderPlan(const QueryTrace& trace, bool include_timings) {
  SqlRelation plan;
  plan.columns.push_back({"", "QUERY PLAN"});
  const std::string text = trace.ToString(include_timings);
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    plan.rows.push_back({SqlValue(text.substr(start, end - start))});
    start = end + 1;
  }
  return plan;
}

}  // namespace

Result<SqlRelation> SqlInterpreter::Execute(
    const std::string& sql, const std::vector<int64_t>& params) {
  if (auto inner = StripExplainAnalyze(sql)) {
    return ExplainAnalyze(*inner, params);
  }
  auto select = ParseSqlSelect(sql);
  if (!select.ok()) return select.status();
  return ExecuteSelect(**select, params);
}

Result<SqlRelation> SqlInterpreter::ExecuteSelect(
    const SqlSelect& select, const std::vector<int64_t>& params,
    QueryTrace* trace) {
  Executor executor(db_, system_tables_, params, trace);
  return executor.Run(select);
}

Result<SqlRelation> SqlInterpreter::ExplainAnalyze(
    const std::string& sql, const std::vector<int64_t>& params,
    QueryTrace* trace, SqlRelation* result_out) {
  const std::string inner = StripExplainAnalyze(sql).value_or(sql);
  QueryTrace local;
  QueryTrace* t = trace != nullptr ? trace : &local;
  Result<SqlRelation> result = [&]() -> Result<SqlRelation> {
    auto select = [&] {
      TraceSpan span(t, "parse");
      return ParseSqlSelect(inner);
    }();
    if (!select.ok()) return select.status();
    ScopedEngineSpan span(t, db_, "execute");
    auto rows = ExecuteSelect(**select, params, t);
    if (rows.ok()) span.AddStat("rows", rows->rows.size());
    return rows;
  }();
  PTLDB_RETURN_IF_ERROR(result.status());
  if (result_out != nullptr) *result_out = std::move(*result);
  return RenderPlan(*t, /*include_timings=*/true);
}

}  // namespace ptldb
