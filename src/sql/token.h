#ifndef PTLDB_SQL_TOKEN_H_
#define PTLDB_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace ptldb {

/// Token kinds of the PTLDB SQL dialect (the subset PostgreSQL needs for
/// Codes 1-4 of the paper: SELECT with CTEs, UNNEST, array slices,
/// aggregates, UNION, ORDER/GROUP/LIMIT).
enum class SqlTokenKind {
  kEnd,
  kIdentifier,   // lout, n1, hub ... (lower-cased; SQL is case-insensitive)
  kKeyword,      // SELECT, FROM, WHERE ... (lexer upper-cases these)
  kInteger,      // 3600
  kString,       // 'poi' (single-quoted, '' escapes a quote)
  kParameter,    // $1
  kComma,        // ,
  kDot,          // .
  kStar,         // *
  kLParen,       // (
  kRParen,       // )
  kLBracket,     // [
  kRBracket,     // ]
  kColon,        // : (array slice)
  kSemicolon,    // ;
  kPlus,
  kMinus,
  kSlash,
  kEq,           // =
  kNe,           // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
};

/// One token with its source position (for error messages).
struct SqlToken {
  SqlTokenKind kind = SqlTokenKind::kEnd;
  std::string text;     // Identifier/keyword text or literal value
                        // (kString carries the unescaped contents).
  int64_t int_value = 0;  // For kInteger / kParameter (the index).
  size_t offset = 0;    // Byte offset in the statement.
};

}  // namespace ptldb

#endif  // PTLDB_SQL_TOKEN_H_
