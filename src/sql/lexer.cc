#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace ptldb {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* keywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",  "WHERE", "GROUP", "ORDER",  "BY",    "LIMIT",
      "AS",     "WITH",  "UNION", "ALL",   "AND",    "OR",    "NOT",
      "DESC",   "ASC",   "MIN",   "MAX",   "UNNEST", "FLOOR", "DISTINCT",
      "NULL",   "IN",    "LEAST", "GREATEST"};
  return *keywords;
}

std::string ToUpper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

bool IsSqlKeyword(const std::string& upper_word) {
  return Keywords().count(upper_word) != 0;
}

Result<std::vector<SqlToken>> LexSql(const std::string& sql) {
  std::vector<SqlToken> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  const auto push = [&](SqlTokenKind kind, size_t offset,
                        std::string text = {}, int64_t value = 0) {
    tokens.push_back({kind, std::move(text), value, offset});
  };
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      const size_t close = sql.find("*/", i + 2);
      if (close == std::string::npos) {
        return Status::InvalidArgument("unterminated /* comment");
      }
      i = close + 2;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) != 0 ||
                       sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      const std::string upper = ToUpper(word);
      if (IsSqlKeyword(upper)) {
        push(SqlTokenKind::kKeyword, start, upper);
      } else {
        push(SqlTokenKind::kIdentifier, start, ToLower(std::move(word)));
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t j = i;
      int64_t value = 0;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j])) != 0) {
        value = value * 10 + (sql[j] - '0');
        ++j;
      }
      push(SqlTokenKind::kInteger, start, sql.substr(i, j - i), value);
      i = j;
      continue;
    }
    // String literal: single quotes, with '' escaping a quote (the SQL
    // standard rule; needed to query system tables by name/cause).
    if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      while (true) {
        if (j >= n) {
          return Status::InvalidArgument("unterminated string literal");
        }
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            value.push_back('\'');
            j += 2;
            continue;
          }
          ++j;
          break;
        }
        value.push_back(sql[j]);
        ++j;
      }
      push(SqlTokenKind::kString, start, std::move(value));
      i = j;
      continue;
    }
    switch (c) {
      case '$': {
        size_t j = i + 1;
        int64_t value = 0;
        while (j < n &&
               std::isdigit(static_cast<unsigned char>(sql[j])) != 0) {
          value = value * 10 + (sql[j] - '0');
          ++j;
        }
        if (j == i + 1 || value < 1) {
          return Status::InvalidArgument("bad parameter reference");
        }
        push(SqlTokenKind::kParameter, start, sql.substr(i, j - i), value);
        i = j;
        continue;
      }
      case ',':
        push(SqlTokenKind::kComma, start);
        break;
      case '.':
        push(SqlTokenKind::kDot, start);
        break;
      case '*':
        push(SqlTokenKind::kStar, start);
        break;
      case '(':
        push(SqlTokenKind::kLParen, start);
        break;
      case ')':
        push(SqlTokenKind::kRParen, start);
        break;
      case '[':
        push(SqlTokenKind::kLBracket, start);
        break;
      case ']':
        push(SqlTokenKind::kRBracket, start);
        break;
      case ':':
        push(SqlTokenKind::kColon, start);
        break;
      case ';':
        push(SqlTokenKind::kSemicolon, start);
        break;
      case '+':
        push(SqlTokenKind::kPlus, start);
        break;
      case '-':
        push(SqlTokenKind::kMinus, start);
        break;
      case '/':
        push(SqlTokenKind::kSlash, start);
        break;
      case '=':
        push(SqlTokenKind::kEq, start);
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(SqlTokenKind::kNe, start);
          ++i;
          break;
        }
        return Status::InvalidArgument("unexpected '!'");
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(SqlTokenKind::kLe, start);
          ++i;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          push(SqlTokenKind::kNe, start);
          ++i;
        } else {
          push(SqlTokenKind::kLt, start);
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          push(SqlTokenKind::kGe, start);
          ++i;
        } else {
          push(SqlTokenKind::kGt, start);
        }
        break;
      default:
        return Status::InvalidArgument(
            std::string("unexpected character '") + c + "' at offset " +
            std::to_string(start));
    }
    ++i;
  }
  push(SqlTokenKind::kEnd, n);
  return tokens;
}

}  // namespace ptldb
