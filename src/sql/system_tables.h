#ifndef PTLDB_SQL_SYSTEM_TABLES_H_
#define PTLDB_SQL_SYSTEM_TABLES_H_

#include <functional>
#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/query_log.h"
#include "sql/interpreter.h"

namespace ptldb {

/// Virtual system tables: the database describes itself through its own
/// SQL front-end (DESIGN.md §11). Each table is materialized on access
/// from live in-memory state — no storage, no schema objects — and then
/// flows through the normal executor machinery, so projections,
/// predicates, ORDER BY and joins compose exactly as over engine tables.
///
///   ptldb_stats        — every registry metric: kind, name, value
///                        (counter/gauge), and count/sum/min/max/p50/p95/
///                        p99 for histograms (NULL where not applicable).
///   ptldb_server       — the `server.*` slice of the registry flattened
///                        to (name, value) rows; histograms expand to
///                        .count/.sum/.p50/.p95/.p99 rows.
///   ptldb_slow_queries — the request ring log: one row per recorded
///                        request with args, outcome, cause and the
///                        per-phase latency attribution columns.
///   ptldb_traces       — tail-sampled traces: retention reason plus the
///                        span-tree JSON.
class SystemTableCatalog {
 public:
  /// Both pointers are borrowed and may be null (the corresponding
  /// tables then materialize empty).
  SystemTableCatalog(MetricsRegistry* metrics, QueryLog* query_log)
      : query_log_(query_log) {
    if (metrics != nullptr) {
      snapshot_ = [metrics] { return metrics->Snapshot(); };
    }
  }

  /// Variant taking a snapshot provider — use this with the facade's
  /// Snapshot(), which overlays the device/buffer-pool counters that live
  /// outside the registry (raw registry snapshots lack them).
  SystemTableCatalog(std::function<MetricsSnapshot()> snapshot,
                     QueryLog* query_log)
      : snapshot_(std::move(snapshot)), query_log_(query_log) {}

  /// True when `name` (lower-case) names a system table.
  static bool IsSystemTable(const std::string& name);

  /// Materializes the named table from live state. NotFound for names
  /// that are not system tables.
  Result<SqlRelation> Load(const std::string& name) const;

 private:
  SqlRelation LoadStats() const;
  SqlRelation LoadServer() const;
  SqlRelation LoadSlowQueries() const;
  SqlRelation LoadTraces() const;

  std::function<MetricsSnapshot()> snapshot_;  // Null = no metrics.
  QueryLog* query_log_;
};

}  // namespace ptldb

#endif  // PTLDB_SQL_SYSTEM_TABLES_H_
