#ifndef PTLDB_SQL_PARSER_H_
#define PTLDB_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace ptldb {

/// Parses one SELECT statement (optionally WITH-prefixed, optionally a
/// UNION chain, optional trailing semicolon) of the PTLDB SQL dialect.
/// Grammar (the subset the paper's Codes 1-4 exercise):
///
///   statement  := [WITH cte ("," cte)*] select [";"]
///   cte        := ident AS "(" select ")"
///   select     := simple (UNION [ALL] simple)*
///   simple     := SELECT item ("," item)* [FROM source ("," source)*]
///                 [WHERE expr] [GROUP BY expr ("," expr)*]
///                 [ORDER BY order ("," order)*] [LIMIT expr]
///               | "(" select ")"
///   source     := ident [AS] [alias] | "(" select ")" [AS] alias
///   item       := "*" | ident "." "*" | expr [[AS] alias]
///   expr       := or-chain of AND-chains of comparisons over additive
///                 terms; primary := int | $n | [ident "."] ident |
///                 func "(" args ")" | "(" expr ")"; postfix [lo:hi]
Result<SqlSelectPtr> ParseSqlSelect(const std::string& sql);

}  // namespace ptldb

#endif  // PTLDB_SQL_PARSER_H_
