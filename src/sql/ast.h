#ifndef PTLDB_SQL_AST_H_
#define PTLDB_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ptldb {

/// AST of the PTLDB SQL dialect — exactly the SELECT shapes the paper's
/// Codes 1-4 use. Produced by ParseSqlSelect (sql/parser.h), evaluated by
/// SqlInterpreter (sql/interpreter.h).

struct SqlExpr;
using SqlExprPtr = std::unique_ptr<SqlExpr>;

enum class SqlExprKind {
  kColumn,     // [table.]name
  kStar,       // * or table.* (select lists only)
  kInteger,    // 3600
  kString,     // 'poi'
  kParameter,  // $1
  kBinary,     // a <op> b
  kFunction,   // MIN/MAX/UNNEST/FLOOR/LEAST/GREATEST(args...)
  kSlice,      // base[lo:hi]
};

enum class SqlBinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kDiv,
};

struct SqlExpr {
  SqlExprKind kind = SqlExprKind::kInteger;

  // kColumn / kStar: optional qualifier + name.
  std::string table;
  std::string column;

  // kInteger / kParameter.
  int64_t value = 0;

  // kString: the unescaped literal contents.
  std::string text;

  // kBinary.
  SqlBinaryOp op = SqlBinaryOp::kEq;
  SqlExprPtr lhs;
  SqlExprPtr rhs;

  // kFunction: normalized upper-case name + arguments.
  std::string function;
  std::vector<SqlExprPtr> args;

  // kSlice: base (lhs), bounds.
  SqlExprPtr slice_lo;
  SqlExprPtr slice_hi;
};

struct SqlSelect;
using SqlSelectPtr = std::unique_ptr<SqlSelect>;

/// One FROM item: a base table, a parenthesized subquery, or a CTE
/// reference (resolved at execution time; syntactically a base table).
struct SqlTableRef {
  std::string table;      // Base table / CTE name (empty for subqueries).
  SqlSelectPtr subquery;  // Set for (SELECT ...) alias.
  std::string alias;      // Exposure name (defaults to the table name).
};

struct SqlSelectItem {
  SqlExprPtr expr;
  std::string alias;  // Output name ("" derives from the expression).
};

struct SqlOrderItem {
  SqlExprPtr expr;
  bool descending = false;
};

/// A (possibly compound) SELECT statement.
struct SqlSelect {
  // WITH name AS (select), ... — present on the outermost statement only.
  std::vector<std::pair<std::string, SqlSelectPtr>> ctes;

  std::vector<SqlSelectItem> items;
  std::vector<SqlTableRef> from;
  SqlExprPtr where;
  std::vector<SqlExprPtr> group_by;
  std::vector<SqlOrderItem> order_by;
  SqlExprPtr limit;

  // UNION [ALL] chain: this select's rows combined with `union_next`.
  SqlSelectPtr union_next;
  bool union_all = false;
};

}  // namespace ptldb

#endif  // PTLDB_SQL_AST_H_
