#ifndef PTLDB_SQL_LEXER_H_
#define PTLDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace ptldb {

/// Tokenizes one SQL statement. Keywords are recognized case-insensitively
/// and normalized to upper case; identifiers are normalized to lower case
/// (PostgreSQL folding). Comments ("-- ..." and "/* ... */") are skipped.
Result<std::vector<SqlToken>> LexSql(const std::string& sql);

/// True when `word` (upper-cased) is a reserved keyword of the dialect.
bool IsSqlKeyword(const std::string& upper_word);

}  // namespace ptldb

#endif  // PTLDB_SQL_LEXER_H_
