#include "server/server.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "common/query_log.h"

namespace ptldb {

namespace {

using Clock = QueryContext::Clock;

uint64_t NsSince(Clock::time_point from) {
  const auto d = Clock::now() - from;
  if (d.count() <= 0) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

/// Fills a record's type/argument fields from the request, using the same
/// per-type field conventions the facade documents on QueryRequest (unset
/// fields stay -1 so the slow-query table shows n/a, not zeros).
void FillRecordFromRequest(QueryLogRecord* rec, const QueryRequest& r) {
  rec->set_type(QueryTypeName(r.type));
  rec->s = static_cast<int32_t>(r.s);
  rec->t = r.t;
  switch (r.type) {
    case QueryType::kV2vEa:
    case QueryType::kV2vLd:
      rec->g = static_cast<int32_t>(r.g);
      break;
    case QueryType::kV2vSd:
      rec->g = static_cast<int32_t>(r.g);
      rec->t_end = r.t_end;
      break;
    case QueryType::kEaKnn:
    case QueryType::kLdKnn:
      rec->set_set_name(r.set_name.c_str());
      rec->k = static_cast<int32_t>(r.k);
      break;
    case QueryType::kEaOtm:
    case QueryType::kLdOtm:
      rec->set_set_name(r.set_name.c_str());
      break;
  }
}

/// Same fault classification the facade's degradation policy uses.
bool IsStorageFault(const Status& s) {
  return s.code() == Status::Code::kIoError ||
         s.code() == Status::Code::kCorruption;
}

/// Ticks with fewer interactive samples than this keep the previous shed
/// decision's latency verdict: a p99 over a handful of queries is noise.
constexpr uint64_t kMinWindowSamples = 8;

ServerOptions Normalized(ServerOptions o) {
  if (o.queue_capacity == 0) o.queue_capacity = 1;
  o.expensive_admit_fraction =
      std::clamp(o.expensive_admit_fraction, 0.0, 1.0);
  o.shed_enter_fraction = std::clamp(o.shed_enter_fraction, 0.0, 1.0);
  o.shed_exit_fraction =
      std::clamp(o.shed_exit_fraction, 0.0, o.shed_enter_fraction);
  if (o.worker_poll.count() <= 0) {
    o.worker_poll = std::chrono::milliseconds(10);
  }
  if (o.controller_period.count() <= 0) {
    o.controller_period = std::chrono::milliseconds(20);
  }
  return o;
}

size_t ExpensiveLimit(const ServerOptions& o) {
  const auto limit = static_cast<size_t>(
      static_cast<double>(o.queue_capacity) * o.expensive_admit_fraction);
  // At least one expensive slot, or the class could never be served at all.
  return std::max<size_t>(1, limit);
}

}  // namespace

PtldbServer::PtldbServer(PtldbDatabase* db, const ServerOptions& options)
    : db_(db),
      options_(Normalized(options)),
      queue_(options_.queue_capacity, ExpensiveLimit(options_)) {
  MetricsRegistry* m = db_->metrics();
  admitted_ = m->counter("server.admitted");
  completed_ = m->counter("server.completed");
  rejected_queue_full_ = m->counter("server.rejected.queue_full");
  rejected_shed_ = m->counter("server.rejected.shed");
  dropped_deadline_queue_ = m->counter("server.dropped.deadline_in_queue");
  deadline_exceeded_ = m->counter("server.deadline_exceeded");
  shed_transitions_ = m->counter("server.shed.transitions");
  breaker_open_ = m->counter("server.breaker.opened");
  breaker_fallback_ = m->counter("server.breaker.fallback_served");
  breaker_probes_ = m->counter("server.breaker.probes");
  retry_budget_denied_ = m->counter("server.breaker.budget_denied");
  reject_cause_stopping_ = m->counter("server.rejected.cause.stopping");
  reject_cause_shed_ = m->counter("server.rejected.cause.shed");
  reject_cause_queue_full_ = m->counter("server.rejected.cause.queue_full");
  reject_cause_headroom_ = m->counter("server.rejected.cause.headroom");
  queue_depth_gauge_ = m->gauge("server.queue_depth");
  shed_gauge_ = m->gauge("server.shedding");
  latency_interactive_ = m->histogram("server.latency.interactive_ns");
  latency_expensive_ = m->histogram("server.latency.expensive_ns");
  queue_wait_interactive_ = m->histogram("server.queue_wait.interactive_ns");
  queue_wait_expensive_ = m->histogram("server.queue_wait.expensive_ns");
  ctrl_window_ = m->histogram("server.ctrl_window.interactive_ns");
  {
    MutexLock lock(budget_mu_);
    budget_tokens_ = options_.retry_budget_burst;
    budget_refilled_ = Clock::now();
  }
  uint32_t n = options_.num_workers;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  controller_ = std::thread([this] { ControllerLoop(); });
}

PtldbServer::~PtldbServer() { Shutdown(); }

void PtldbServer::Shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  stopping_.store(true, std::memory_order_relaxed);
  queue_.Stop();
  // Workers keep popping until the stopped queue is empty, so admitted
  // requests are executed (or deadline-dropped), not abandoned.
  for (std::thread& w : workers_) w.join();
  {
    MutexLock lock(ctrl_mu_);
    ctrl_stop_ = true;
  }
  ctrl_cv_.NotifyAll();
  controller_.join();
  // Belt and braces: anything still queued (a push that raced Stop) is
  // answered, never silently dropped.
  while (auto task = queue_.TryPop()) {
    reject_cause_stopping_->Add(1);
    LogUnexecuted(*task, QueryOutcome::kShed, "stopping",
                  NsSince(task->enqueued));
    QueryResponse resp;
    resp.status = Status::Overloaded("server stopped before execution");
    Respond(&*task, std::move(resp));
  }
}

void PtldbServer::ResetStats() { db_->metrics()->ResetPrefix("server."); }

Counter* PtldbServer::RejectCauseCounter(const char* cause) {
  if (std::strcmp(cause, "stopping") == 0) return reject_cause_stopping_;
  if (std::strcmp(cause, "queue_full") == 0) return reject_cause_queue_full_;
  if (std::strcmp(cause, "headroom") == 0) return reject_cause_headroom_;
  return reject_cause_shed_;
}

void PtldbServer::LogUnexecuted(const Task& task, QueryOutcome outcome,
                                const char* cause, uint64_t queue_wait_ns) {
  QueryLog* qlog = db_->query_log();
  if (qlog == nullptr || !qlog->enabled()) return;
  QueryLogRecord rec;
  FillRecordFromRequest(&rec, task.request);
  rec.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          task.enqueued.time_since_epoch())
          .count());
  rec.outcome = outcome;
  rec.set_cause(cause);
  // Keep the record's exactness invariant (latency == phase sum) even for
  // requests that never reached the engine: admission and queue wait are
  // the only phases such a request ever had.
  rec.phases.ns[static_cast<size_t>(QueryPhase::kAdmission)] =
      task.admission_ns;
  rec.phases.ns[static_cast<size_t>(QueryPhase::kQueueWait)] =
      queue_wait_ns > task.admission_ns ? queue_wait_ns - task.admission_ns
                                        : 0;
  rec.latency_ns = rec.phases.total_ns();
  qlog->Append(rec);
}

void PtldbServer::Submit(QueryRequest request, Callback done) {
  const bool expensive = IsExpensive(request.type);
  Task task;
  task.enqueued = Clock::now();
  task.has_deadline = request.has_deadline;
  task.deadline = request.deadline;
  if (!task.has_deadline && options_.default_deadline.count() > 0) {
    task.has_deadline = true;
    task.deadline = task.enqueued + options_.default_deadline;
  }
  task.request = std::move(request);
  task.done = std::move(done);
  if (stopping_.load(std::memory_order_relaxed)) {
    reject_cause_stopping_->Add(1);
    task.admission_ns = NsSince(task.enqueued);
    LogUnexecuted(task, QueryOutcome::kShed, "stopping", 0);
    QueryResponse resp;
    resp.status = Status::Overloaded("server is shutting down");
    Respond(&task, std::move(resp));
    return;
  }
  // Graceful degradation, step 1: while the controller sheds, the
  // expensive class is refused before it touches the queue. Interactive
  // requests are never shed — they are only refused by a full queue.
  if (expensive && shedding_.load(std::memory_order_relaxed)) {
    rejected_shed_->Add(1);
    reject_cause_shed_->Add(1);
    task.admission_ns = NsSince(task.enqueued);
    LogUnexecuted(task, QueryOutcome::kShed, "shed", 0);
    QueryResponse resp;
    resp.status =
        Status::Overloaded("expensive query class is being shed");
    Respond(&task, std::move(resp));
    return;
  }
  // Graceful degradation, step 2: the queue itself refuses a full queue
  // (any class) and an expensive request beyond the headroom reserve.
  // TryPush leaves `task` intact on rejection, so the callback still
  // fires exactly once. Admission time is stamped before the push (the
  // push itself is queue wait, not admission).
  task.admission_ns = NsSince(task.enqueued);
  const char* reject_cause = "queue_full";
  Status pushed = queue_.TryPush(std::move(task), expensive, &reject_cause);
  if (!pushed.ok()) {
    (expensive ? rejected_shed_ : rejected_queue_full_)->Add(1);
    RejectCauseCounter(reject_cause)->Add(1);
    LogUnexecuted(task, QueryOutcome::kShed, reject_cause, 0);
    QueryResponse resp;
    resp.status = std::move(pushed);
    Respond(&task, std::move(resp));
    return;
  }
  admitted_->Add(1);
  queue_depth_gauge_->Max(static_cast<int64_t>(queue_.depth()));
}

QueryResponse PtldbServer::Execute(QueryRequest request) {
  // Same bounded-wait discipline the lint gate enforces on the serving
  // path (no std::future here): the waiter re-checks its predicate every
  // tick, so a lost notify can delay the answer by at most one tick.
  struct SyncState {
    Mutex mu;
    CondVar cv;
    bool done PTLDB_GUARDED_BY(mu) = false;
    QueryResponse resp PTLDB_GUARDED_BY(mu);
  };
  auto state = std::make_shared<SyncState>();
  Submit(std::move(request), [state](QueryResponse resp) {
    {
      MutexLock lock(state->mu);
      state->resp = std::move(resp);
      state->done = true;
    }
    state->cv.NotifyAll();
  });
  MutexLock lock(state->mu);
  while (!state->done) {
    state->cv.WaitFor(lock, std::chrono::milliseconds(50));
  }
  return std::move(state->resp);
}

void PtldbServer::WorkerLoop() {
  for (;;) {
    std::optional<Task> task = queue_.PopFor(options_.worker_poll);
    if (!task.has_value()) {
      if (queue_.stopped()) return;
      continue;
    }
    RunTask(std::move(*task));
  }
}

void PtldbServer::RunTask(Task task) {
  const auto start = Clock::now();
  const uint64_t since_submit = NsSince(task.enqueued);
  const uint64_t queue_wait_ns = since_submit > task.admission_ns
                                     ? since_submit - task.admission_ns
                                     : 0;
  const bool expensive = IsExpensive(task.request.type);
  (expensive ? queue_wait_expensive_ : queue_wait_interactive_)
      ->Record(queue_wait_ns);
  QueryResponse resp;
  // Requests whose deadline expired while queued are dropped without
  // executing: the client has already given up, so running the query
  // would spend a worker on an answer nobody reads — exactly the waste
  // that collapses a queue under overload.
  if (task.has_deadline && start >= task.deadline) {
    dropped_deadline_queue_->Add(1);
    LogUnexecuted(task, QueryOutcome::kDeadline, "queue", since_submit);
    resp.status = Status::DeadlineExceeded("deadline expired in queue");
    Respond(&task, std::move(resp));
    return;
  }
  // The worker owns the request boundary, so it installs the recorder
  // (the facade's Timed() then sees one current and does not finish its
  // own): queue wait and admission were measured outside the recorder's
  // lifetime and are charged as external phases.
  RequestRecorder recorder(db_->query_log());
  if (recorder.active()) {
    FillRecordFromRequest(&recorder.record(), task.request);
    recorder.ChargeExternal(QueryPhase::kQueueWait, queue_wait_ns);
    recorder.ChargeExternal(QueryPhase::kAdmission, task.admission_ns);
  }
  {
    // Deadline propagation: the context is visible to every engine
    // checkpoint (buffer pool, executor, TTL drains) for the scope of
    // the query; the scope ends before the callback runs, so user code
    // never observes a server-installed context.
    QueryContext ctx = task.has_deadline
                           ? QueryContext::WithDeadline(task.deadline)
                           : QueryContext();
    ScopedQueryContext scope(&ctx);
    Dispatch(task, &resp);
  }
  completed_->Add(1);
  if (resp.status.code() == Status::Code::kDeadlineExceeded) {
    deadline_exceeded_->Add(1);
  }
  const auto finish = Clock::now();
  const auto latency_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(finish -
                                                           task.enqueued)
          .count());
  if (expensive) {
    latency_expensive_->Record(latency_ns);
  } else {
    latency_interactive_->Record(latency_ns);
    ctrl_window_->Record(latency_ns);
  }
  // The callback runs inside the record's kCallback phase; the record is
  // appended only after it returns, so the log's latency covers delivery.
  const Status final_status = resp.status;
  if (recorder.active()) {
    // The facade already set `degraded` for in-query fallbacks; breaker
    // routing (primary never tried) is only visible here.
    if (resp.degraded) recorder.record().degraded = true;
    recorder.SwitchPhase(QueryPhase::kCallback);
  }
  Respond(&task, std::move(resp));
  if (recorder.active()) {
    const char* cause = nullptr;
    const QueryOutcome outcome = OutcomeForStatus(final_status, &cause);
    recorder.Finish(outcome, cause);
  }
}

void PtldbServer::Dispatch(const Task& task, QueryResponse* resp) {
  const QueryRequest& r = task.request;
  switch (r.type) {
    case QueryType::kV2vEa: {
      auto res = db_->EarliestArrival(r.s, r.g, r.t);
      if (res.ok()) resp->time = *res; else resp->status = res.status();
      return;
    }
    case QueryType::kV2vLd: {
      auto res = db_->LatestDeparture(r.s, r.g, r.t);
      if (res.ok()) resp->time = *res; else resp->status = res.status();
      return;
    }
    case QueryType::kV2vSd: {
      auto res = db_->ShortestDuration(r.s, r.g, r.t, r.t_end);
      if (res.ok()) resp->duration = *res; else resp->status = res.status();
      return;
    }
    case QueryType::kEaKnn:
    case QueryType::kLdKnn:
    case QueryType::kEaOtm:
    case QueryType::kLdOtm:
      break;
  }
  // Set queries route through the per-set circuit breaker: a set whose
  // derived tables keep faulting is served straight from the exact v2v
  // fallback until a budgeted half-open probe finds the primary healthy
  // again — no retry storm against quarantined pages.
  const bool ld = r.type == QueryType::kLdKnn || r.type == QueryType::kLdOtm;
  const bool otm = r.type == QueryType::kEaOtm || r.type == QueryType::kLdOtm;
  const uint32_t k = otm ? 0 : r.k;
  Breaker* breaker = BreakerFor(r.set_name);
  Result<std::vector<StopTimeResult>> res = Status::Internal("unreachable");
  if (AllowPrimary(breaker)) {
    switch (r.type) {
      case QueryType::kEaKnn:
        res = db_->EaKnn(r.set_name, r.s, r.t, r.k);
        break;
      case QueryType::kLdKnn:
        res = db_->LdKnn(r.set_name, r.s, r.t, r.k);
        break;
      case QueryType::kEaOtm:
        res = db_->EaOneToMany(r.set_name, r.s, r.t);
        break;
      case QueryType::kLdOtm:
        res = db_->LdOneToMany(r.set_name, r.s, r.t);
        break;
      default:
        break;
    }
    // Failure signal for the breaker: the primary plan faulted — either
    // surfaced as a storage fault (both paths down) or hidden by the
    // facade's per-query degradation (fallback answered). A deadline
    // expiry is NOT a failure: it says the request was slow, not that
    // the tables are bad.
    resp->degraded = LastQueryDegradedOnThisThread();
    const bool failed =
        resp->degraded || (!res.ok() && IsStorageFault(res.status()));
    RecordPrimaryOutcome(breaker, failed);
  } else {
    breaker_fallback_->Add(1);
    resp->via_breaker = true;
    resp->degraded = true;
    res = ld ? db_->LdFallbackQuery(r.set_name, r.s, r.t, k)
             : db_->EaFallbackQuery(r.set_name, r.s, r.t, k);
  }
  if (res.ok()) {
    resp->results = std::move(*res);
  } else {
    resp->status = res.status();
  }
}

bool PtldbServer::AllowPrimary(Breaker* breaker) {
  MutexLock lock(breaker->mu);
  switch (breaker->state) {
    case Breaker::State::kClosed:
      return true;
    case Breaker::State::kOpen: {
      if (Clock::now() < breaker->open_until) return false;
      // Cooldown over: one budgeted probe may test the primary. The
      // token bucket caps probe rate across all breakers, so a fleet of
      // failing sets cannot stampede the primary tables.
      if (!TryAcquireRetryToken()) {
        retry_budget_denied_->Add(1);
        return false;
      }
      breaker->state = Breaker::State::kHalfOpen;
      breaker_probes_->Add(1);
      return true;
    }
    case Breaker::State::kHalfOpen:
      // A probe is already in flight; everyone else keeps to the
      // fallback until it reports.
      return false;
  }
  return true;
}

void PtldbServer::RecordPrimaryOutcome(Breaker* breaker, bool failed) {
  MutexLock lock(breaker->mu);
  if (!failed) {
    breaker->state = Breaker::State::kClosed;
    breaker->consecutive_failures = 0;
    return;
  }
  const bool was_probe = breaker->state == Breaker::State::kHalfOpen;
  if (was_probe ||
      ++breaker->consecutive_failures >= options_.breaker_failure_threshold) {
    if (breaker->state != Breaker::State::kOpen) breaker_open_->Add(1);
    breaker->state = Breaker::State::kOpen;
    breaker->open_until = Clock::now() + options_.breaker_cooldown;
    breaker->consecutive_failures = 0;
  }
}

PtldbServer::Breaker* PtldbServer::BreakerFor(const std::string& set_name) {
  MutexLock lock(breakers_mu_);
  auto& slot = breakers_[set_name];
  if (slot == nullptr) slot = std::make_unique<Breaker>();
  return slot.get();
}

bool PtldbServer::TryAcquireRetryToken() {
  MutexLock lock(budget_mu_);
  const auto now = Clock::now();
  const double elapsed_s =
      std::chrono::duration<double>(now - budget_refilled_).count();
  budget_refilled_ = now;
  budget_tokens_ =
      std::min(options_.retry_budget_burst,
               budget_tokens_ + elapsed_s * options_.retry_budget_per_sec);
  if (budget_tokens_ < 1.0) return false;
  budget_tokens_ -= 1.0;
  return true;
}

void PtldbServer::ControllerLoop() {
  for (;;) {
    {
      MutexLock lock(ctrl_mu_);
      if (ctrl_stop_) return;
      // Bounded wait (lint-enforced): the controller re-checks stop at
      // least once per period even if the shutdown notify is lost.
      ctrl_cv_.WaitFor(lock, options_.controller_period);
      if (ctrl_stop_) return;
    }
    ControllerTick();
  }
}

void PtldbServer::ControllerTick() {
  const size_t depth = queue_.depth();
  queue_depth_gauge_->Set(static_cast<int64_t>(depth));
  const HistogramSummary window = ctrl_window_->Summary();
  ctrl_window_->Reset();
  const auto slo_ns = static_cast<double>(options_.interactive_slo.count());
  const bool p99_breach =
      slo_ns > 0 && window.count >= kMinWindowSamples && window.p99 > slo_ns;
  const auto cap = static_cast<double>(queue_.capacity());
  const auto enter_depth =
      static_cast<size_t>(cap * options_.shed_enter_fraction);
  const auto exit_depth =
      static_cast<size_t>(cap * options_.shed_exit_fraction);
  bool shed = shedding_.load(std::memory_order_relaxed);
  // Hysteresis: enter on either signal (deep queue OR p99 past SLO),
  // leave only when both have recovered, at a lower depth than entry —
  // the flag cannot flap on a queue hovering at one threshold.
  if (!shed) {
    shed = depth >= enter_depth || p99_breach;
  } else {
    shed = depth > exit_depth || p99_breach;
  }
  if (shed != shedding_.load(std::memory_order_relaxed)) {
    shed_transitions_->Add(1);
    shedding_.store(shed, std::memory_order_relaxed);
  }
  shed_gauge_->Set(shed ? 1 : 0);
}

void PtldbServer::Respond(Task* task, QueryResponse resp) {
  if (task->done) {
    Callback done = std::move(task->done);
    task->done = nullptr;
    done(std::move(resp));
  }
}

}  // namespace ptldb
