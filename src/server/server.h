#ifndef PTLDB_SERVER_SERVER_H_
#define PTLDB_SERVER_SERVER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/query_context.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "ptldb/ptldb.h"
#include "server/request_queue.h"

namespace ptldb {

/// One request against a PtldbServer. `type` selects which PtldbDatabase
/// query runs and which fields matter:
///   kV2vEa / kV2vLd / kV2vSd : s, g, t (+ t_end for kV2vSd / kV2vLd's
///                              deadline in t)
///   kEaKnn / kLdKnn          : set_name, s (the query stop), t, k
///   kEaOtm / kLdOtm          : set_name, s, t
struct QueryRequest {
  QueryType type = QueryType::kV2vEa;
  std::string set_name;
  StopId s = 0;
  StopId g = 0;
  EventTime t;
  EventTime t_end;
  uint32_t k = 0;
  /// Per-request deadline. Unset (has_deadline == false) falls back to
  /// ServerOptions::default_deadline (none if that is zero too).
  bool has_deadline = false;
  QueryContext::Clock::time_point deadline{};
};

/// Outcome of one request, delivered to the completion callback exactly
/// once. `status` is the end-to-end contract of DESIGN.md §10:
///   OK                 — answer fields are valid.
///   kOverloaded        — rejected at admission (queue full / class shed /
///                        server stopping); the query never executed.
///   kDeadlineExceeded  — deadline expired in-queue (dropped at pop,
///                        never executed) or mid-query at a cancellation
///                        checkpoint (partial work discarded).
///   anything else      — the query executed and failed (storage fault
///                        with no viable fallback, bad arguments, ...).
struct QueryResponse {
  Status status = Status::Ok();
  /// v2v point answer (kV2vEa: earliest arrival, kV2vLd: latest
  /// departure); EventTime::Infinity()/NegInfinity() when unreachable.
  EventTime time;
  /// kV2vSd answer; Duration::Infinity() when unreachable.
  Duration duration = Duration::Zero();
  /// kNN / one-to-many answer.
  std::vector<StopTimeResult> results;
  /// Answer came from the exact v2v fallback (primary faulted mid-query,
  /// or the set's circuit breaker routed around the primary entirely).
  bool degraded = false;
  /// The set's breaker was open and the primary tables were skipped.
  bool via_breaker = false;
};

struct ServerOptions {
  /// Worker threads executing queries (0 = one per hardware thread).
  uint32_t num_workers = 0;
  /// Bounded request-queue capacity; pushes beyond it get kOverloaded.
  size_t queue_capacity = 256;
  /// Fraction of the queue the expensive class (kNN/OTM) may fill before
  /// its admissions are rejected — the headroom reserve that keeps
  /// interactive (v2v) traffic admittable under an expensive flood.
  double expensive_admit_fraction = 0.5;
  /// Deadline applied to requests that carry none (0 = none).
  std::chrono::nanoseconds default_deadline{0};
  /// p99 target for interactive queries; the overload controller sheds
  /// the expensive class while the windowed p99 exceeds it.
  std::chrono::nanoseconds interactive_slo{std::chrono::milliseconds(50)};
  /// Controller epoch: how often queue depth and the latency window are
  /// inspected and the shed flag re-decided.
  std::chrono::nanoseconds controller_period{std::chrono::milliseconds(20)};
  /// Queue-depth hysteresis for shedding, as fractions of capacity: the
  /// controller starts shedding the expensive class at `shed_enter` and
  /// stops below `shed_exit` (enter > exit, so the flag cannot flap).
  double shed_enter_fraction = 0.75;
  double shed_exit_fraction = 0.25;
  /// Consecutive primary failures (storage-fault degradations) of one
  /// target set that trip its circuit breaker open.
  uint32_t breaker_failure_threshold = 3;
  /// How long an open breaker routes straight to the fallback before it
  /// lets a half-open probe retry the primary tables.
  std::chrono::nanoseconds breaker_cooldown{std::chrono::milliseconds(100)};
  /// Retry budget (token bucket) gating half-open probes: at most
  /// `retry_budget_per_sec` probes per second, bursting to
  /// `retry_budget_burst` — a storm of failing requests cannot turn into
  /// a storm of primary retries against known-bad tables.
  double retry_budget_per_sec = 10.0;
  double retry_budget_burst = 5.0;
  /// Worker pop timeout; bounds every wait on the request path.
  std::chrono::nanoseconds worker_poll{std::chrono::milliseconds(10)};
};

/// In-process concurrent serving layer over one PtldbDatabase
/// (DESIGN.md §10, "Serving & overload"). Owns a bounded two-class
/// request queue, N worker threads, an overload controller thread, and
/// per-target-set circuit breakers. The database outlives the server;
/// the server adds no new locks below the facade's documented hierarchy
/// (its queue/controller/breaker mutexes are leaves, never held across
/// a database call).
class PtldbServer {
 public:
  using Callback = std::function<void(QueryResponse)>;

  /// Starts workers and controller immediately. `db` is borrowed and
  /// must outlive the server.
  PtldbServer(PtldbDatabase* db, const ServerOptions& options = {});
  ~PtldbServer();

  PtldbServer(const PtldbServer&) = delete;
  PtldbServer& operator=(const PtldbServer&) = delete;

  /// Submits one request. `done` is invoked exactly once — synchronously
  /// (from this call) when admission rejects the request, else later from
  /// a worker thread. Never blocks: admission control answers
  /// kOverloaded instead of queueing beyond capacity.
  void Submit(QueryRequest request, Callback done);

  /// Blocking convenience: Submit + wait for the response.
  QueryResponse Execute(QueryRequest request);

  /// Stops admission, drains the queue (in-queue requests are answered —
  /// executed if their deadline allows, kOverloaded once stopping), joins
  /// workers and controller. Idempotent; the destructor calls it.
  void Shutdown();

  /// Zeroes every `server.*` counter and histogram (gauges keep their
  /// instantaneous reading) — the serving-layer analogue of the facade's
  /// ResetIoStats(), so load phases can be measured as deltas.
  void ResetStats();

  /// True while the overload controller is shedding the expensive class.
  bool shedding() const {
    return shedding_.load(std::memory_order_relaxed);
  }
  size_t queue_depth() const { return queue_.depth(); }
  uint32_t num_workers() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// The priority class a query type is served under: v2v queries are
  /// interactive, kNN / one-to-many are expensive.
  static bool IsExpensive(QueryType type) {
    return type != QueryType::kV2vEa && type != QueryType::kV2vLd &&
           type != QueryType::kV2vSd;
  }

 private:
  struct Task {
    QueryRequest request;
    Callback done;
    QueryContext::Clock::time_point enqueued{};
    bool has_deadline = false;
    QueryContext::Clock::time_point deadline{};
    /// Submit-measured admission-control duration (ns); the worker
    /// charges it to the request's kAdmission phase.
    uint64_t admission_ns = 0;
  };

  /// Per-target-set circuit breaker (DESIGN.md §10). State transitions
  /// happen under `mu` (a leaf lock, held only for the state math, never
  /// across a query).
  struct Breaker {
    enum class State { kClosed, kOpen, kHalfOpen };
    Mutex mu;
    State state PTLDB_GUARDED_BY(mu) = State::kClosed;
    uint32_t consecutive_failures PTLDB_GUARDED_BY(mu) = 0;
    QueryContext::Clock::time_point open_until PTLDB_GUARDED_BY(mu){};
  };

  void WorkerLoop();
  void ControllerLoop();
  void ControllerTick();
  void RunTask(Task task);
  /// Executes the database query for `task` (breaker-routed for set
  /// queries) and fills the answer fields of `resp`.
  void Dispatch(const Task& task, QueryResponse* resp);
  /// Breaker routing decision for one set query: true = run the primary
  /// plan, false = go straight to the fallback tables.
  bool AllowPrimary(Breaker* breaker);
  void RecordPrimaryOutcome(Breaker* breaker, bool failed);
  Breaker* BreakerFor(const std::string& set_name);
  /// Token-bucket draw for a half-open probe.
  bool TryAcquireRetryToken();
  void Respond(Task* task, QueryResponse resp);
  /// Synthesizes the query-log record for a request that never executed
  /// (admission rejection or in-queue deadline drop) — every request
  /// leaves exactly one record, executed or not.
  void LogUnexecuted(const Task& task, QueryOutcome outcome,
                     const char* cause, uint64_t queue_wait_ns);
  /// The `server.rejected.cause.*` counter for a TryPush/shed cause tag.
  Counter* RejectCauseCounter(const char* cause);

  PtldbDatabase* db_;
  ServerOptions options_;
  RequestQueue<Task> queue_;
  std::vector<std::thread> workers_;
  std::thread controller_;

  std::atomic<bool> shedding_{false};
  std::atomic<bool> stopping_{false};
  bool shutdown_done_ = false;  ///< Guarded by Shutdown's single-caller contract.

  /// Controller sleep/wake. Leaf lock.
  Mutex ctrl_mu_;
  CondVar ctrl_cv_;
  bool ctrl_stop_ PTLDB_GUARDED_BY(ctrl_mu_) = false;

  /// Breaker registry. Leaf lock; breakers are never erased, so the
  /// returned pointers stay valid for the server's lifetime.
  Mutex breakers_mu_;
  std::map<std::string, std::unique_ptr<Breaker>> breakers_
      PTLDB_GUARDED_BY(breakers_mu_);

  /// Retry-budget token bucket. Leaf lock.
  Mutex budget_mu_;
  double budget_tokens_ PTLDB_GUARDED_BY(budget_mu_) = 0;
  QueryContext::Clock::time_point budget_refilled_
      PTLDB_GUARDED_BY(budget_mu_){};

  // Registry-backed serving metrics (pointers stable; see MetricsRegistry).
  Counter* admitted_ = nullptr;
  Counter* completed_ = nullptr;
  Counter* rejected_queue_full_ = nullptr;
  Counter* rejected_shed_ = nullptr;
  Counter* dropped_deadline_queue_ = nullptr;
  Counter* deadline_exceeded_ = nullptr;
  Counter* shed_transitions_ = nullptr;
  Counter* breaker_open_ = nullptr;
  Counter* breaker_fallback_ = nullptr;
  Counter* breaker_probes_ = nullptr;
  Counter* retry_budget_denied_ = nullptr;
  Gauge* queue_depth_gauge_ = nullptr;
  Gauge* shed_gauge_ = nullptr;
  Counter* reject_cause_stopping_ = nullptr;
  Counter* reject_cause_shed_ = nullptr;
  Counter* reject_cause_queue_full_ = nullptr;
  Counter* reject_cause_headroom_ = nullptr;
  Histogram* latency_interactive_ = nullptr;
  Histogram* latency_expensive_ = nullptr;
  /// Time spent queued (pop minus push), split by class — the slice of
  /// end-to-end latency the overload controller can actually shed.
  Histogram* queue_wait_interactive_ = nullptr;
  Histogram* queue_wait_expensive_ = nullptr;
  /// Controller-owned p99 window: reset every ControllerTick, so its
  /// Summary() is "interactive latency since the last tick".
  Histogram* ctrl_window_ = nullptr;
};

}  // namespace ptldb

#endif  // PTLDB_SERVER_SERVER_H_
