#ifndef PTLDB_SERVER_REQUEST_QUEUE_H_
#define PTLDB_SERVER_REQUEST_QUEUE_H_

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace ptldb {

/// Bounded two-class MPMC queue between the server's submitters and its
/// worker threads (DESIGN.md §10). Admission control lives at the push:
/// a full queue rejects immediately with kOverloaded instead of blocking
/// the submitter — under overload the cheapest place to fail is before
/// any work or memory is committed, and a fast explicit rejection lets
/// clients back off instead of piling onto a queue whose wait already
/// exceeds their deadline.
///
/// Two priority classes implement shed-before-collapse:
///  - interactive items (v2v queries) may use the whole capacity;
///  - expensive items (kNN / one-to-many) are admitted only while total
///    depth is below `expensive_limit` (< capacity), reserving headroom
///    that only interactive traffic can use, and are popped only when no
///    interactive item is waiting.
/// So a flood of expensive requests can never push interactive latency
/// past the backlog the reserve allows, and under sustained overload the
/// expensive class sheds first while interactive availability holds.
///
/// All waits are bounded (CondVar::WaitFor): a worker parked in PopFor
/// re-checks stop/deadline state every timeout tick, so neither shutdown
/// nor a lost notify can wedge it. scripts/ptldb_lint.py enforces this
/// for every wait in src/server/.
template <typename T>
class RequestQueue {
 public:
  RequestQueue(size_t capacity, size_t expensive_limit)
      : capacity_(capacity == 0 ? 1 : capacity),
        expensive_limit_(expensive_limit > capacity_ ? capacity_
                                                     : expensive_limit) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Admission control. Non-blocking: either the item is queued (OK) or
  /// the caller learns instantly why not (kOverloaded). `expensive`
  /// selects the priority class. On rejection `item` is NOT consumed —
  /// the caller keeps it (and its completion callback) to answer the
  /// client. `reject_cause`, when non-null, receives a static cause tag
  /// ("stopping" / "queue_full" / "headroom") for structured accounting.
  Status TryPush(T&& item, bool expensive,
                 const char** reject_cause = nullptr) {
    {
      MutexLock lock(mu_);
      if (stopped_) {
        if (reject_cause != nullptr) *reject_cause = "stopping";
        return Status::Overloaded("server is shutting down");
      }
      const size_t depth = interactive_.size() + expensive_.size();
      if (depth >= capacity_) {
        if (reject_cause != nullptr) *reject_cause = "queue_full";
        return Status::Overloaded("request queue full");
      }
      if (expensive && depth >= expensive_limit_) {
        if (reject_cause != nullptr) *reject_cause = "headroom";
        return Status::Overloaded(
            "queue beyond expensive-class admission limit");
      }
      if (expensive) {
        expensive_.push_back(std::move(item));
      } else {
        interactive_.push_back(std::move(item));
      }
    }
    cv_.NotifyOne();
    return Status::Ok();
  }

  /// Pops the oldest interactive item, else the oldest expensive item,
  /// waiting at most `timeout`. Empty optional on timeout or when the
  /// queue is stopped and drained — callers distinguish via stopped().
  std::optional<T> PopFor(std::chrono::nanoseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (interactive_.empty() && expensive_.empty()) {
      if (stopped_) return std::nullopt;
      // Bounded wait: timing out just returns to the caller's loop, so a
      // worker can never sleep through shutdown (and the lint gate can
      // prove it — see the unbounded-wait rule).
      if (!cv_.WaitFor(lock, deadline - std::chrono::steady_clock::now())) {
        return std::nullopt;
      }
    }
    return PopLocked();
  }

  /// Non-waiting pop (shutdown drain).
  std::optional<T> TryPop() {
    MutexLock lock(mu_);
    if (interactive_.empty() && expensive_.empty()) return std::nullopt;
    return PopLocked();
  }

  /// Rejects all future pushes and wakes every waiting popper. Items
  /// already queued stay queued — the owner drains them with TryPop and
  /// answers each one (never silently dropped).
  void Stop() {
    {
      MutexLock lock(mu_);
      stopped_ = true;
    }
    cv_.NotifyAll();
  }

  bool stopped() const {
    MutexLock lock(mu_);
    return stopped_;
  }
  size_t depth() const {
    MutexLock lock(mu_);
    return interactive_.size() + expensive_.size();
  }
  size_t capacity() const { return capacity_; }
  size_t expensive_limit() const { return expensive_limit_; }

 private:
  T PopLocked() PTLDB_REQUIRES(mu_) {
    std::deque<T>& q = interactive_.empty() ? expensive_ : interactive_;
    T item = std::move(q.front());
    q.pop_front();
    return item;
  }

  const size_t capacity_;
  const size_t expensive_limit_;
  /// Queue latch; a leaf lock (nothing is acquired under it — PopLocked
  /// and the push bodies are pure deque operations).
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> interactive_ PTLDB_GUARDED_BY(mu_);
  std::deque<T> expensive_ PTLDB_GUARDED_BY(mu_);
  bool stopped_ PTLDB_GUARDED_BY(mu_) = false;
};

}  // namespace ptldb

#endif  // PTLDB_SERVER_REQUEST_QUEUE_H_
