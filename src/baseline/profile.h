#ifndef PTLDB_BASELINE_PROFILE_H_
#define PTLDB_BASELINE_PROFILE_H_

#include <span>
#include <vector>

#include "common/time_util.h"
#include "timetable/timetable.h"

namespace ptldb {

/// A Pareto-optimal journey option: depart at `dep`, arrive at `arr`.
/// "Pareto" = no other option departs later AND arrives earlier.
struct ProfilePair {
  EventTime dep;
  EventTime arr;

  friend bool operator==(const ProfilePair&, const ProfilePair&) = default;
};

/// The complete journey profile between one fixed endpoint and every stop:
/// for each stop, all Pareto-optimal (departure, arrival) pairs. Built by
/// ForwardProfile / BackwardProfile; this structure underlies both the
/// baseline LD/SD answers and the TTL label construction.
class ProfileSet {
 public:
  explicit ProfileSet(uint32_t num_stops) : offsets_(num_stops + 1, 0) {}

  /// Assembles a ProfileSet from per-stop pair lists, each already in the
  /// canonical order (descending dep, descending arr). Used by the profile
  /// scans; exposed for tests that construct profiles directly.
  static ProfileSet FromLists(uint32_t num_stops,
                              std::vector<std::vector<ProfilePair>> lists);

  /// Pareto pairs at `v`, sorted by descending dep (and descending arr).
  std::span<const ProfilePair> pairs(StopId v) const {
    return {pairs_.data() + offsets_[v], pairs_.data() + offsets_[v + 1]};
  }

  /// For a forward profile from source q: earliest arrival at v departing q
  /// no sooner than t. For a backward profile to target g (pairs are
  /// (dep@v, arr@g)): earliest arrival at g departing v no sooner than t.
  EventTime EarliestArrival(StopId v, EventTime t) const;

  /// Latest departure such that arrival <= t_end (EventTime::NegInfinity()
  /// if none).
  EventTime LatestDeparture(StopId v, EventTime t_end) const;

  /// Minimum (arr - dep) over pairs with dep >= t and arr <= t_end.
  Duration ShortestDuration(StopId v, EventTime t, EventTime t_end) const;

  uint64_t total_pairs() const { return pairs_.size(); }

 private:
  std::vector<uint32_t> offsets_;
  std::vector<ProfilePair> pairs_;
};

/// All Pareto-optimal journeys from `source` to every stop: pair (dep, arr)
/// at stop v means "leave source at dep, be at v by arr". The pair list at
/// `source` itself is empty (staying put is not a journey). O(|E| log).
ProfileSet ForwardProfile(const Timetable& tt, StopId source);

/// All Pareto-optimal journeys from every stop to `target`: pair (dep, arr)
/// at stop v means "leave v at dep, reach target by arr". O(|E| log).
ProfileSet BackwardProfile(const Timetable& tt, StopId target);

}  // namespace ptldb

#endif  // PTLDB_BASELINE_PROFILE_H_
