#ifndef PTLDB_BASELINE_CSA_H_
#define PTLDB_BASELINE_CSA_H_

#include <vector>

#include "common/time_util.h"
#include "timetable/timetable.h"

namespace ptldb {

/// Baseline route-planning algorithms that operate directly on the
/// timetable (no preprocessing). They serve as ground truth for every label
/// based answer in this repository and as the "work directly on the
/// provided timetable" family the paper's related-work section mentions.
///
/// Transfer model (same everywhere in this repo): a passenger arriving at a
/// stop at time x may board any connection departing from it at time >= x.

/// One-to-all earliest arrival via a Connection Scan: returns arr[v] = the
/// earliest arrival at v over paths leaving `source` no sooner than
/// `depart_after` (EventTime::Infinity() when unreachable). arr[source] =
/// depart_after. O(|E|).
std::vector<EventTime> EarliestArrivalScan(const Timetable& tt, StopId source,
                                           EventTime depart_after);

/// All-to-one latest departure via a reverse Connection Scan: returns
/// dep[v] = the latest departure from v over paths reaching `target` no
/// later than `arrive_by` (EventTime::NegInfinity() when infeasible).
/// dep[target] = arrive_by. O(|E|).
std::vector<EventTime> LatestDepartureScan(const Timetable& tt, StopId target,
                                           EventTime arrive_by);

/// Point-to-point wrappers (s != g; self-queries have label-defined
/// semantics, see docs/QUERY_SEMANTICS in README).
EventTime EarliestArrival(const Timetable& tt, StopId s, StopId g,
                          EventTime t);
EventTime LatestDeparture(const Timetable& tt, StopId s, StopId g,
                          EventTime t);

/// Shortest duration within [t, t']: the minimum (arrival - departure) over
/// paths departing s at >= t and arriving g at <= t'. Duration::Infinity()
/// when no such path exists. Implemented over the forward profile (see
/// profile.h).
Duration ShortestDuration(const Timetable& tt, StopId s, StopId g,
                          EventTime t, EventTime t_end);

/// Earliest arrival with a transfer budget (the paper's future-work
/// extension: "taking the number of transfers as an additional
/// optimization criterion"). Returns arr[v] = the earliest arrival at v
/// over journeys that leave `source` no sooner than `depart_after` and use
/// at most `max_trips` vehicles (= max_trips - 1 transfers). Implemented
/// as a round-based Connection Scan, O(max_trips * |E|). With
/// max_trips >= the network diameter this equals EarliestArrivalScan.
std::vector<EventTime> EarliestArrivalWithTrips(const Timetable& tt,
                                                StopId source,
                                                EventTime depart_after,
                                                uint32_t max_trips);

/// An earliest-arrival journey from s (departing >= t) to g as the ordered
/// connection sequence, found by a Connection Scan with parent tracking.
/// Empty when g is unreachable (or s == g). The journey's last connection
/// arrives exactly at EarliestArrival(tt, s, g, t).
std::vector<ConnectionId> FindEarliestJourney(const Timetable& tt, StopId s,
                                              StopId g, EventTime t);

}  // namespace ptldb

#endif  // PTLDB_BASELINE_CSA_H_
