#include "baseline/profile.h"

#include <algorithm>

namespace ptldb {

ProfileSet ProfileSet::FromLists(uint32_t num_stops,
                                 std::vector<std::vector<ProfilePair>> lists) {
  ProfileSet set(num_stops);
  uint64_t total = 0;
  for (const auto& l : lists) total += l.size();
  set.pairs_.reserve(total);
  for (StopId v = 0; v < num_stops; ++v) {
    set.offsets_[v] = static_cast<uint32_t>(set.pairs_.size());
    set.pairs_.insert(set.pairs_.end(), lists[v].begin(), lists[v].end());
  }
  set.offsets_[num_stops] = static_cast<uint32_t>(set.pairs_.size());
  return set;
}

EventTime ProfileSet::EarliestArrival(StopId v, EventTime t) const {
  const auto p = pairs(v);
  // Pairs are sorted by descending dep; dep >= t is a prefix and arr is
  // descending within it, so the last prefix element has the minimum arr.
  const auto it = std::partition_point(
      p.begin(), p.end(), [&](const ProfilePair& x) { return x.dep >= t; });
  if (it == p.begin()) return EventTime::Infinity();
  return (it - 1)->arr;
}

EventTime ProfileSet::LatestDeparture(StopId v, EventTime t_end) const {
  const auto p = pairs(v);
  // arr <= t_end is a suffix; its first element has the maximum dep.
  const auto it = std::partition_point(
      p.begin(), p.end(),
      [&](const ProfilePair& x) { return x.arr > t_end; });
  if (it == p.end()) return EventTime::NegInfinity();
  return it->dep;
}

Duration ProfileSet::ShortestDuration(StopId v, EventTime t,
                                      EventTime t_end) const {
  Duration best = Duration::Infinity();
  for (const ProfilePair& x : pairs(v)) {
    if (x.dep < t) break;  // Descending dep: the rest depart too early.
    if (x.arr > t_end) continue;
    best = std::min(best, x.arr - x.dep);
  }
  return best;
}

ProfileSet ForwardProfile(const Timetable& tt, StopId source) {
  // Scan connections in ascending arrival order. lists[v] accumulates
  // Pareto pairs (dep from source, arr at v) in ascending-arr order, which
  // by Pareto optimality is also ascending-dep order.
  std::vector<std::vector<ProfilePair>> lists(tt.num_stops());
  for (ConnectionId id : tt.by_arrival()) {
    const Connection& c = tt.connection(id);
    EventTime dep_q = EventTime::NegInfinity();
    if (c.from == source) dep_q = c.dep;
    const auto& at_from = lists[c.from];
    // Latest departure from source that reaches c.from by c.dep: the last
    // entry with arr <= c.dep (ascending order => it has the max dep).
    const auto it = std::partition_point(
        at_from.begin(), at_from.end(),
        [&](const ProfilePair& x) { return x.arr <= c.dep; });
    if (it != at_from.begin()) dep_q = std::max(dep_q, (it - 1)->dep);
    if (dep_q == EventTime::NegInfinity()) continue;

    auto& at_to = lists[c.to];
    if (!at_to.empty() && at_to.back().arr == c.arr) {
      if (dep_q > at_to.back().dep) at_to.back().dep = dep_q;
    } else if (at_to.empty() || dep_q > at_to.back().dep) {
      at_to.push_back({dep_q, c.arr});
    }
  }
  // Canonical ProfileSet order is descending dep.
  for (auto& l : lists) std::reverse(l.begin(), l.end());
  return ProfileSet::FromLists(tt.num_stops(), std::move(lists));
}

ProfileSet BackwardProfile(const Timetable& tt, StopId target) {
  // Scan connections in descending departure order. lists[v] accumulates
  // Pareto pairs (dep at v, arr at target) in descending-dep order, which
  // by Pareto optimality is also descending-arr order.
  std::vector<std::vector<ProfilePair>> lists(tt.num_stops());
  const auto conns = tt.connections();
  for (size_t i = conns.size(); i-- > 0;) {
    const Connection& c = conns[i];
    EventTime arr_g = EventTime::Infinity();
    if (c.to == target) arr_g = c.arr;
    const auto& at_to = lists[c.to];
    // Earliest arrival at target when continuing from c.to no sooner than
    // c.arr: the last entry with dep >= c.arr (descending order => it has
    // the min arr).
    const auto it = std::partition_point(
        at_to.begin(), at_to.end(),
        [&](const ProfilePair& x) { return x.dep >= c.arr; });
    if (it != at_to.begin()) arr_g = std::min(arr_g, (it - 1)->arr);
    if (arr_g == EventTime::Infinity()) continue;

    auto& at_from = lists[c.from];
    if (!at_from.empty() && at_from.back().dep == c.dep) {
      if (arr_g < at_from.back().arr) at_from.back().arr = arr_g;
    } else if (at_from.empty() || arr_g < at_from.back().arr) {
      at_from.push_back({c.dep, arr_g});
    }
  }
  return ProfileSet::FromLists(tt.num_stops(), std::move(lists));
}

}  // namespace ptldb
