#ifndef PTLDB_BASELINE_BRUTE_H_
#define PTLDB_BASELINE_BRUTE_H_

#include <vector>

#include "common/time_util.h"
#include "timetable/timetable.h"

namespace ptldb {

/// Ground-truth EA one-to-many (Section 3.3): earliest arrival for every
/// reachable target in `targets`, departing `q` no sooner than `t`.
/// Rows sorted by (arrival, stop); unreachable targets omitted.
/// Precondition: q is not in `targets` (self-queries have label-defined
/// semantics; see README).
std::vector<StopTimeResult> BruteEaOneToMany(
    const Timetable& tt, StopId q, const std::vector<StopId>& targets,
    EventTime t);

/// Ground-truth EA kNN (Section 3.2): the k first rows of BruteEaOneToMany.
std::vector<StopTimeResult> BruteEaKnn(const Timetable& tt, StopId q,
                                       const std::vector<StopId>& targets,
                                       EventTime t, uint32_t k);

/// Ground-truth LD one-to-many: latest departure from `q` reaching each
/// target no later than `t`. Rows sorted by (departure desc, stop);
/// infeasible targets omitted. Precondition: q not in `targets`.
std::vector<StopTimeResult> BruteLdOneToMany(
    const Timetable& tt, StopId q, const std::vector<StopId>& targets,
    EventTime t);

/// Ground-truth LD kNN: the k first rows of BruteLdOneToMany.
std::vector<StopTimeResult> BruteLdKnn(const Timetable& tt, StopId q,
                                       const std::vector<StopId>& targets,
                                       EventTime t, uint32_t k);

}  // namespace ptldb

#endif  // PTLDB_BASELINE_BRUTE_H_
