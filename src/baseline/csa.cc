#include "baseline/csa.h"

#include <algorithm>

#include "baseline/profile.h"

namespace ptldb {

std::vector<Timestamp> EarliestArrivalScan(const Timetable& tt, StopId source,
                                           Timestamp depart_after) {
  std::vector<Timestamp> arr(tt.num_stops(), kInfinityTime);
  arr[source] = depart_after;
  const auto conns = tt.connections();
  for (size_t i = tt.FirstConnectionNotBefore(depart_after); i < conns.size();
       ++i) {
    const Connection& c = conns[i];
    if (arr[c.from] <= c.dep && c.arr < arr[c.to]) arr[c.to] = c.arr;
  }
  return arr;
}

std::vector<Timestamp> LatestDepartureScan(const Timetable& tt, StopId target,
                                           Timestamp arrive_by) {
  std::vector<Timestamp> dep(tt.num_stops(), kNegInfinityTime);
  dep[target] = arrive_by;
  const auto order = tt.by_arrival();
  // Last connection with arr <= arrive_by, scanning backwards from there.
  const auto begin = std::partition_point(
      order.begin(), order.end(), [&](ConnectionId id) {
        return tt.connection(id).arr <= arrive_by;
      });
  for (auto it = begin; it != order.begin();) {
    --it;
    const Connection& c = tt.connection(*it);
    if (dep[c.to] >= c.arr && c.dep > dep[c.from]) dep[c.from] = c.dep;
  }
  return dep;
}

Timestamp EarliestArrival(const Timetable& tt, StopId s, StopId g,
                          Timestamp t) {
  return EarliestArrivalScan(tt, s, t)[g];
}

Timestamp LatestDeparture(const Timetable& tt, StopId s, StopId g,
                          Timestamp t) {
  return LatestDepartureScan(tt, g, t)[s];
}

Timestamp ShortestDuration(const Timetable& tt, StopId s, StopId g,
                           Timestamp t, Timestamp t_end) {
  return BackwardProfile(tt, g).ShortestDuration(s, t, t_end);
}

std::vector<Timestamp> EarliestArrivalWithTrips(const Timetable& tt,
                                                StopId source,
                                                Timestamp depart_after,
                                                uint32_t max_trips) {
  std::vector<Timestamp> arr(tt.num_stops(), kInfinityTime);
  arr[source] = depart_after;
  if (max_trips == 0) return arr;
  std::vector<Timestamp> prev = arr;
  std::vector<bool> on_trip(tt.num_trips(), false);
  const auto conns = tt.connections();
  const size_t first = tt.FirstConnectionNotBefore(depart_after);
  for (uint32_t round = 0; round < max_trips; ++round) {
    std::fill(on_trip.begin(), on_trip.end(), false);
    bool improved = false;
    for (size_t i = first; i < conns.size(); ++i) {
      const Connection& c = conns[i];
      // Board fresh (one more trip on top of a <round journey) or stay on
      // a trip already boarded this round.
      if (prev[c.from] <= c.dep || on_trip[c.trip]) {
        on_trip[c.trip] = true;
        if (c.arr < arr[c.to]) {
          arr[c.to] = c.arr;
          improved = true;
        }
      }
    }
    if (!improved) break;
    prev = arr;
  }
  return arr;
}

std::vector<ConnectionId> FindEarliestJourney(const Timetable& tt, StopId s,
                                              StopId g, Timestamp t) {
  std::vector<Timestamp> arr(tt.num_stops(), kInfinityTime);
  std::vector<ConnectionId> parent(tt.num_stops(), kInvalidConnection);
  arr[s] = t;
  const auto conns = tt.connections();
  for (size_t i = tt.FirstConnectionNotBefore(t); i < conns.size(); ++i) {
    const Connection& c = conns[i];
    if (arr[c.from] <= c.dep && c.arr < arr[c.to]) {
      arr[c.to] = c.arr;
      parent[c.to] = static_cast<ConnectionId>(i);
    }
  }
  std::vector<ConnectionId> journey;
  if (s == g || arr[g] == kInfinityTime) return journey;
  for (StopId v = g; v != s;) {
    const ConnectionId id = parent[v];
    journey.push_back(id);
    v = tt.connection(id).from;
  }
  std::reverse(journey.begin(), journey.end());
  return journey;
}

}  // namespace ptldb
