#include "baseline/csa.h"

#include <algorithm>

#include "baseline/profile.h"

namespace ptldb {

std::vector<EventTime> EarliestArrivalScan(const Timetable& tt, StopId source,
                                           EventTime depart_after) {
  std::vector<EventTime> arr(tt.num_stops(), EventTime::Infinity());
  arr[source] = depart_after;
  const auto conns = tt.connections();
  for (size_t i = tt.FirstConnectionNotBefore(depart_after); i < conns.size();
       ++i) {
    const Connection& c = conns[i];
    if (arr[c.from] <= c.dep && c.arr < arr[c.to]) arr[c.to] = c.arr;
  }
  return arr;
}

std::vector<EventTime> LatestDepartureScan(const Timetable& tt, StopId target,
                                           EventTime arrive_by) {
  std::vector<EventTime> dep(tt.num_stops(), EventTime::NegInfinity());
  dep[target] = arrive_by;
  const auto order = tt.by_arrival();
  // Last connection with arr <= arrive_by, scanning backwards from there.
  const auto begin = std::partition_point(
      order.begin(), order.end(), [&](ConnectionId id) {
        return tt.connection(id).arr <= arrive_by;
      });
  for (auto it = begin; it != order.begin();) {
    --it;
    const Connection& c = tt.connection(*it);
    if (dep[c.to] >= c.arr && c.dep > dep[c.from]) dep[c.from] = c.dep;
  }
  return dep;
}

EventTime EarliestArrival(const Timetable& tt, StopId s, StopId g,
                          EventTime t) {
  return EarliestArrivalScan(tt, s, t)[g];
}

EventTime LatestDeparture(const Timetable& tt, StopId s, StopId g,
                          EventTime t) {
  return LatestDepartureScan(tt, g, t)[s];
}

Duration ShortestDuration(const Timetable& tt, StopId s, StopId g,
                          EventTime t, EventTime t_end) {
  return BackwardProfile(tt, g).ShortestDuration(s, t, t_end);
}

std::vector<EventTime> EarliestArrivalWithTrips(const Timetable& tt,
                                                StopId source,
                                                EventTime depart_after,
                                                uint32_t max_trips) {
  std::vector<EventTime> arr(tt.num_stops(), EventTime::Infinity());
  arr[source] = depart_after;
  if (max_trips == 0) return arr;
  std::vector<EventTime> prev = arr;
  std::vector<bool> on_trip(tt.num_trips(), false);
  const auto conns = tt.connections();
  const size_t first = tt.FirstConnectionNotBefore(depart_after);
  for (uint32_t round = 0; round < max_trips; ++round) {
    std::fill(on_trip.begin(), on_trip.end(), false);
    bool improved = false;
    for (size_t i = first; i < conns.size(); ++i) {
      const Connection& c = conns[i];
      // Board fresh (one more trip on top of a <round journey) or stay on
      // a trip already boarded this round.
      if (prev[c.from] <= c.dep || on_trip[c.trip]) {
        on_trip[c.trip] = true;
        if (c.arr < arr[c.to]) {
          arr[c.to] = c.arr;
          improved = true;
        }
      }
    }
    if (!improved) break;
    prev = arr;
  }
  return arr;
}

std::vector<ConnectionId> FindEarliestJourney(const Timetable& tt, StopId s,
                                              StopId g, EventTime t) {
  std::vector<EventTime> arr(tt.num_stops(), EventTime::Infinity());
  std::vector<ConnectionId> parent(tt.num_stops(), kInvalidConnection);
  arr[s] = t;
  const auto conns = tt.connections();
  for (size_t i = tt.FirstConnectionNotBefore(t); i < conns.size(); ++i) {
    const Connection& c = conns[i];
    if (arr[c.from] <= c.dep && c.arr < arr[c.to]) {
      arr[c.to] = c.arr;
      parent[c.to] = static_cast<ConnectionId>(i);
    }
  }
  std::vector<ConnectionId> journey;
  if (s == g || arr[g] == EventTime::Infinity()) return journey;
  for (StopId v = g; v != s;) {
    const ConnectionId id = parent[v];
    journey.push_back(id);
    v = tt.connection(id).from;
  }
  std::reverse(journey.begin(), journey.end());
  return journey;
}

}  // namespace ptldb
