#include "baseline/brute.h"

#include <algorithm>

#include "baseline/csa.h"
#include "baseline/profile.h"

namespace ptldb {

std::vector<StopTimeResult> BruteEaOneToMany(
    const Timetable& tt, StopId q, const std::vector<StopId>& targets,
    Timestamp t) {
  const std::vector<Timestamp> arr = EarliestArrivalScan(tt, q, t);
  std::vector<StopTimeResult> out;
  out.reserve(targets.size());
  for (StopId v : targets) {
    if (arr[v] != kInfinityTime) out.push_back({v, arr[v]});
  }
  std::sort(out.begin(), out.end(),
            [](const StopTimeResult& a, const StopTimeResult& b) {
              return a.time != b.time ? a.time < b.time : a.stop < b.stop;
            });
  return out;
}

std::vector<StopTimeResult> BruteEaKnn(const Timetable& tt, StopId q,
                                       const std::vector<StopId>& targets,
                                       Timestamp t, uint32_t k) {
  auto out = BruteEaOneToMany(tt, q, targets, t);
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<StopTimeResult> BruteLdOneToMany(
    const Timetable& tt, StopId q, const std::vector<StopId>& targets,
    Timestamp t) {
  // One forward profile from q answers LD(q, v, t) for every v: the latest
  // departure among Pareto journeys arriving v by t.
  const ProfileSet profile = ForwardProfile(tt, q);
  std::vector<StopTimeResult> out;
  out.reserve(targets.size());
  for (StopId v : targets) {
    const Timestamp dep = profile.LatestDeparture(v, t);
    if (dep != kNegInfinityTime) out.push_back({v, dep});
  }
  std::sort(out.begin(), out.end(),
            [](const StopTimeResult& a, const StopTimeResult& b) {
              return a.time != b.time ? a.time > b.time : a.stop < b.stop;
            });
  return out;
}

std::vector<StopTimeResult> BruteLdKnn(const Timetable& tt, StopId q,
                                       const std::vector<StopId>& targets,
                                       Timestamp t, uint32_t k) {
  auto out = BruteLdOneToMany(tt, q, targets, t);
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace ptldb
