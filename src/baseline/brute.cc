#include "baseline/brute.h"

#include <algorithm>

#include "baseline/csa.h"
#include "baseline/profile.h"

namespace ptldb {

namespace {

/// Target lists have set semantics (mirroring PtldbDatabase::AddTargetSet):
/// duplicates collapse so a stop never appears twice in one answer.
std::vector<StopId> UniqueTargets(const std::vector<StopId>& targets) {
  std::vector<StopId> uniq = targets;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  return uniq;
}

}  // namespace

std::vector<StopTimeResult> BruteEaOneToMany(
    const Timetable& tt, StopId q, const std::vector<StopId>& targets,
    EventTime t) {
  const std::vector<EventTime> arr = EarliestArrivalScan(tt, q, t);
  const std::vector<StopId> uniq = UniqueTargets(targets);
  std::vector<StopTimeResult> out;
  out.reserve(uniq.size());
  // q ∈ T needs no special case here: the CSA scan seeds arr[q] = t (the
  // querier is at q already), which is exactly the "stay put" answer.
  for (StopId v : uniq) {
    if (arr[v] != EventTime::Infinity()) out.push_back({v, arr[v]});
  }
  std::sort(out.begin(), out.end(),
            [](const StopTimeResult& a, const StopTimeResult& b) {
              return a.time != b.time ? a.time < b.time : a.stop < b.stop;
            });
  return out;
}

std::vector<StopTimeResult> BruteEaKnn(const Timetable& tt, StopId q,
                                       const std::vector<StopId>& targets,
                                       EventTime t, uint32_t k) {
  auto out = BruteEaOneToMany(tt, q, targets, t);
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<StopTimeResult> BruteLdOneToMany(
    const Timetable& tt, StopId q, const std::vector<StopId>& targets,
    EventTime t) {
  // One forward profile from q answers LD(q, v, t) for every v: the latest
  // departure among Pareto journeys arriving v by t.
  const ProfileSet profile = ForwardProfile(tt, q);
  const std::vector<StopId> uniq = UniqueTargets(targets);
  std::vector<StopTimeResult> out;
  out.reserve(uniq.size());
  for (StopId v : uniq) {
    if (v == q) {
      // The profile holds only real journeys into q, but the querier is
      // already there: departing exactly at the deadline t still "arrives"
      // by t. Symmetric to EA's arr[q] = t seed above.
      out.push_back({v, t});
      continue;
    }
    const EventTime dep = profile.LatestDeparture(v, t);
    if (dep != EventTime::NegInfinity()) out.push_back({v, dep});
  }
  std::sort(out.begin(), out.end(),
            [](const StopTimeResult& a, const StopTimeResult& b) {
              return a.time != b.time ? a.time > b.time : a.stop < b.stop;
            });
  return out;
}

std::vector<StopTimeResult> BruteLdKnn(const Timetable& tt, StopId q,
                                       const std::vector<StopId>& targets,
                                       EventTime t, uint32_t k) {
  auto out = BruteLdOneToMany(tt, q, targets, t);
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace ptldb
