#include "common/status.h"

namespace ptldb {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kCorruption:
      return "CORRUPTION";
    case Status::Code::kIoError:
      return "IO_ERROR";
    case Status::Code::kUnsupported:
      return "UNSUPPORTED";
    case Status::Code::kInternal:
      return "INTERNAL";
    case Status::Code::kOverloaded:
      return "OVERLOADED";
    case Status::Code::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ptldb
