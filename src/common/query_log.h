#ifndef PTLDB_COMMON_QUERY_LOG_H_
#define PTLDB_COMMON_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "common/time_types.h"

namespace ptldb {

/// Structured per-request history: every query — served, shed, expired or
/// failed — leaves exactly one fixed-size record in a lock-sharded bounded
/// ring buffer, carrying its arguments, outcome and a phase-attributed
/// latency breakdown. The ring is the storage behind the SQL system tables
/// `ptldb_slow_queries` / `ptldb_traces` and the `phase.*` attribution
/// metrics (DESIGN.md §11).
///
/// Attribution is exact by construction: the per-phase wall-clock
/// nanoseconds of a record always sum to its `latency_ns` (the `other`
/// phase absorbs the remainder), and the per-phase operation counters are
/// deltas of the same thread-local `LocalQueryCounters` the engine already
/// increments — so window sums of `phase.*.label_decodes` etc. telescope
/// to the engine's own `ttl.*` counters (same invariant class as the
/// EXPLAIN ANALYZE span stats).

/// Request phases a query passes through. Order is presentation order in
/// breakdowns; `kOther` is the implicit phase between explicit scopes.
enum class QueryPhase : uint8_t {
  kQueueWait = 0,   ///< Enqueued in the server request queue.
  kAdmission = 1,   ///< Admission control / submit bookkeeping.
  kPlan = 2,        ///< Plan construction + executor drive (non-attributed).
  kLabelDecode = 3, ///< Decoding compressed label buckets.
  kMerge = 4,       ///< TTL common-hub label merges.
  kBufferIo = 5,    ///< Buffer-pool miss servicing (modeled device I/O).
  kCallback = 6,    ///< Delivering the response callback.
  kOther = 7,       ///< Anything not covered by an explicit scope.
};
inline constexpr size_t kNumQueryPhases = 8;

/// Stable lowercase name ("queue_wait", "merge", ...).
const char* QueryPhaseName(QueryPhase phase);

/// Terminal outcome of a request.
enum class QueryOutcome : uint8_t {
  kOk = 0,        ///< Answered (possibly degraded via a circuit breaker).
  kShed = 1,      ///< Rejected at admission (cause: queue_full/headroom/...).
  kDeadline = 2,  ///< Deadline expired (cause: queue vs exec).
  kError = 3,     ///< Engine error (cause: status code name).
};
inline constexpr size_t kNumQueryOutcomes = 4;

/// Stable lowercase name ("ok", "shed", "deadline", "error").
const char* QueryOutcomeName(QueryOutcome outcome);

class Status;

/// Maps a finished request's Status to an outcome plus a cause string:
/// ok -> kOk, kDeadlineExceeded -> kDeadline/"exec" (mid-execution; queue
/// drops set their own cause), kOverloaded -> kShed/"shed", anything else
/// -> kError with the status code's short name ("io_error", ...). The
/// returned cause is a static string or nullptr (no detail).
QueryOutcome OutcomeForStatus(const Status& status, const char** cause);

/// Per-phase slices of one request. Wall nanoseconds plus the operation
/// counters charged while each phase was current. Fixed arrays (no heap)
/// so records are trivially copyable and ring memory is bounded.
struct PhaseBreakdown {
  uint64_t ns[kNumQueryPhases] = {};
  uint64_t io_ns[kNumQueryPhases] = {};  ///< Modeled device I/O charged.
  uint64_t label_decodes[kNumQueryPhases] = {};
  uint64_t label_comparisons[kNumQueryPhases] = {};
  uint64_t hubs_merged[kNumQueryPhases] = {};

  uint64_t total_ns() const {
    uint64_t t = 0;
    for (uint64_t v : ns) t += v;
    return t;
  }
};

/// One ring entry. Fixed size, trivially copyable: string-ish fields are
/// truncating char arrays so a full ring is a single bounded allocation.
struct QueryLogRecord {
  uint64_t seq = 0;       ///< Global append order (assigned by the log).
  uint64_t start_ns = 0;  ///< steady_clock ns when recording began.
  char type[12] = {};     ///< Query type name ("v2v_ea", "sql", ...).
  char set_name[24] = {}; ///< Target set for kNN/OTM, else empty.
  char cause[16] = {};    ///< Outcome detail ("queue_full", "exec", ...).
  int32_t s = -1;         ///< Source stop (-1 = n/a).
  int32_t g = -1;         ///< Goal stop.
  /// Departure/arrival time argument at full compute-tier width —
  /// a multi-day timestamp renders exactly in ptldb_slow_queries.
  EventTime t = EventTime::Invalid();
  EventTime t_end = EventTime::Invalid();  ///< Window end, else Invalid().
  int32_t k = -1;         ///< kNN k, else -1.
  QueryOutcome outcome = QueryOutcome::kOk;
  bool degraded = false;       ///< Served by the exact-v2v fallback.
  bool slow = false;           ///< Latency above the p99-derived threshold.
  bool trace_retained = false; ///< A trace was kept for this request.
  uint64_t latency_ns = 0;     ///< Always equals phases.total_ns().
  PhaseBreakdown phases;

  /// Truncating copy into a fixed char-array field.
  static void SetName(char* dst, size_t cap, const char* src) {
    std::strncpy(dst, src == nullptr ? "" : src, cap - 1);
    dst[cap - 1] = '\0';
  }
  void set_type(const char* v) { SetName(type, sizeof(type), v); }
  void set_set_name(const char* v) { SetName(set_name, sizeof(set_name), v); }
  void set_cause(const char* v) { SetName(cause, sizeof(cause), v); }
};
static_assert(std::is_trivially_copyable_v<QueryLogRecord>,
              "ring records must be trivially copyable (bounded memory)");

/// A trace kept by the tail sampler: the record's span tree rendered to
/// JSON (plus the full live QueryTrace tree when one was attached, e.g.
/// under EXPLAIN ANALYZE).
struct RetainedTrace {
  uint64_t seq = 0;
  char type[12] = {};
  char reason[12] = {};  ///< "slow", "shed", "deadline", "error", "sampled".
  uint64_t latency_ns = 0;
  std::string json;
};

struct QueryLogOptions {
  /// Master switch; also togglable at runtime via set_enabled().
  bool enabled = true;
  /// Total record capacity across all shards (bounded memory).
  size_t capacity = 4096;
  /// Ring shards; writers round-robin so concurrent appends rarely
  /// contend on one mutex. Clamped to [1, capacity].
  size_t shards = 4;
  /// Tail sampling: keep a trace for 1 in `sample_every` normal (fast,
  /// successful) requests. 0 disables the normal-request sample.
  uint64_t sample_every = 128;
  uint64_t sample_seed = 0;
  /// A request is "slow" when latency_ns exceeds
  ///   max(slow_floor_ns, slow_multiplier * p99)
  /// where p99 is re-derived from the log's own latency histogram every
  /// 64 appends (and only once >= 32 samples exist).
  uint64_t slow_floor_ns = 1'000'000;  // 1 ms
  double slow_multiplier = 2.0;
  /// Bounded retained-trace queue (oldest evicted first).
  size_t trace_capacity = 256;
};

/// Lock-sharded bounded ring of QueryLogRecords plus the tail-sampled
/// trace store. Appends are wait-short (one shard mutex + a trivially
/// copyable store); snapshots copy shard-by-shard and merge by seq, so
/// readers never block writers for long. All memory is allocated up
/// front: appending never grows the ring.
class QueryLog {
 public:
  /// `metrics` may be null (no attribution counters are published then).
  explicit QueryLog(const QueryLogOptions& options,
                    MetricsRegistry* metrics = nullptr);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Runtime toggle: the overhead benchmark flips this on one database
  /// instead of rebuilding, so on/off phases share every other condition.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  const QueryLogOptions& options() const { return options_; }

  /// Appends one finished record: assigns `seq`, classifies `slow`,
  /// decides trace retention, publishes `phase.*` / `querylog.*` /
  /// `traces.retained.*` metrics, and stores the record in its ring
  /// shard. `trace_json` (may be empty) is a full QueryTrace tree to
  /// embed if the trace is retained. Returns the assigned seq, or 0 if
  /// the log is disabled (nothing stored or counted).
  uint64_t Append(QueryLogRecord rec, const std::string& trace_json = "");

  /// All live records, ordered by seq (oldest first).
  std::vector<QueryLogRecord> SnapshotRecords() const;
  /// All retained traces, ordered by seq (oldest first).
  std::vector<RetainedTrace> SnapshotTraces() const;

  /// Current slow classification threshold in ns.
  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }

  /// Renders a record's phase breakdown (and args/outcome) as a span-tree
  /// JSON object; `full_trace_json` is embedded under "trace" when
  /// non-empty. Exposed for tests.
  static std::string TraceJson(const QueryLogRecord& rec,
                               const char* reason,
                               const std::string& full_trace_json);

 private:
  struct Shard {
    /// Shard latch: leaf lock, held only to copy one record in or to
    /// copy the shard out for a snapshot.
    mutable Mutex mu;
    std::vector<QueryLogRecord> ring PTLDB_GUARDED_BY(mu);
    size_t next PTLDB_GUARDED_BY(mu) = 0;
    size_t filled PTLDB_GUARDED_BY(mu) = 0;
  };

  void PublishMetrics(const QueryLogRecord& rec);
  void RetainTrace(const QueryLogRecord& rec, const char* reason,
                   const std::string& full_trace_json);

  QueryLogOptions options_;
  MetricsRegistry* metrics_;
  std::atomic<bool> enabled_;
  std::atomic<uint64_t> next_seq_{1};
  size_t per_shard_cap_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// The log's own latency histogram, source of the p99-derived slow
  /// threshold (refreshed every 64 appends).
  Histogram latency_;
  std::atomic<uint64_t> slow_threshold_ns_;

  /// Retained-trace queue latch: leaf lock, push/evict/copy only.
  mutable Mutex trace_mu_;
  std::deque<RetainedTrace> traces_ PTLDB_GUARDED_BY(trace_mu_);

  // Pre-resolved metric handles (null when metrics_ == nullptr).
  Histogram* phase_ns_[kNumQueryPhases] = {};
  Counter* phase_io_ns_[kNumQueryPhases] = {};
  Counter* phase_label_decodes_[kNumQueryPhases] = {};
  Counter* phase_label_comparisons_[kNumQueryPhases] = {};
  Counter* phase_hubs_merged_[kNumQueryPhases] = {};
  Counter* records_ = nullptr;
  Counter* latency_total_ns_ = nullptr;
  Counter* slow_ = nullptr;
  Counter* outcome_[kNumQueryOutcomes] = {};
  Counter* retained_slow_ = nullptr;
  Counter* retained_shed_ = nullptr;
  Counter* retained_deadline_ = nullptr;
  Counter* retained_error_ = nullptr;
  Counter* retained_sampled_ = nullptr;
  Counter* trace_evictions_ = nullptr;
};

class RequestRecorder;

namespace internal {
/// The calling thread's active recorder, if any. Declared here so the
/// inactive-path cost of ScopedQueryPhase is one thread-local load.
extern thread_local RequestRecorder* g_current_recorder;
}  // namespace internal

/// Stack-scoped builder of one QueryLogRecord, installed in a thread-local
/// slot (mirroring ScopedQueryContext) so engine code can attribute work
/// to the current request without plumbing a handle through every layer.
///
/// Ownership rule: whoever owns the request boundary installs the
/// recorder — the server around Dispatch, or the facade's Timed() when no
/// recorder is current (direct library use). A second construction while
/// one is installed yields an inactive recorder, so nested queries (e.g.
/// per-target v2v fallback inside a degraded kNN) never double-record.
///
/// The recorder is single-threaded by contract, like the query itself:
/// phase switches snapshot the calling thread's LocalQueryCounters.
class RequestRecorder {
 public:
  /// Active iff `log` is non-null+enabled and no recorder is current.
  explicit RequestRecorder(QueryLog* log);
  /// Uninstalls; appends a record with outcome kError / cause
  /// "abandoned" if Finish was never called (exactly-once backstop).
  ~RequestRecorder();
  RequestRecorder(const RequestRecorder&) = delete;
  RequestRecorder& operator=(const RequestRecorder&) = delete;

  static RequestRecorder* Current() { return internal::g_current_recorder; }

  bool active() const { return log_ != nullptr; }
  /// The record under construction (args, type, flags are caller-set).
  QueryLogRecord& record() { return rec_; }

  /// Adds externally measured time to a phase (queue wait measured by the
  /// server before the recorder existed). Counts toward latency_ns.
  void ChargeExternal(QueryPhase phase, uint64_t ns) {
    if (log_ != nullptr) rec_.phases.ns[static_cast<size_t>(phase)] += ns;
  }

  /// Makes `phase` current: wall time and LocalQueryCounters deltas since
  /// the previous switch are charged to the outgoing phase. Returns the
  /// outgoing phase (for ScopedQueryPhase restore).
  QueryPhase SwitchPhase(QueryPhase phase);

  /// Attaches a full QueryTrace JSON tree to embed if a trace is
  /// retained for this request (EXPLAIN ANALYZE path).
  void AttachTraceJson(std::string json) { trace_json_ = std::move(json); }

  /// Closes the record: charges the open phase, sets latency_ns to the
  /// exact phase sum, and appends to the log. Idempotent; the first call
  /// wins. Returns the assigned seq (0 if inactive/disabled).
  uint64_t Finish(QueryOutcome outcome, const char* cause = nullptr);

 private:
  QueryLog* log_ = nullptr;
  QueryLogRecord rec_;
  QueryPhase current_ = QueryPhase::kOther;
  uint64_t phase_start_ns_ = 0;
  LocalQueryCounters base_;
  bool finished_ = false;
  std::string trace_json_;
};

/// RAII phase scope. When no recorder is installed on this thread the
/// cost is one thread-local load and a branch, so always-on hooks in the
/// engine hot paths (label decode, merges, buffer-pool misses) stay
/// near-free for un-recorded work.
class ScopedQueryPhase {
 public:
  explicit ScopedQueryPhase(QueryPhase phase) {
    RequestRecorder* r = RequestRecorder::Current();
    if (r != nullptr && r->active()) {
      recorder_ = r;
      previous_ = r->SwitchPhase(phase);
    }
  }
  ~ScopedQueryPhase() {
    if (recorder_ != nullptr) recorder_->SwitchPhase(previous_);
  }
  ScopedQueryPhase(const ScopedQueryPhase&) = delete;
  ScopedQueryPhase& operator=(const ScopedQueryPhase&) = delete;

 private:
  RequestRecorder* recorder_ = nullptr;
  QueryPhase previous_ = QueryPhase::kOther;
};

}  // namespace ptldb

#endif  // PTLDB_COMMON_QUERY_LOG_H_
