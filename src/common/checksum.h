#ifndef PTLDB_COMMON_CHECKSUM_H_
#define PTLDB_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace ptldb {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum used by iSCSI, ext4, and LevelDB/RocksDB block trailers.
/// PTLDB stamps every 8 KiB storage-engine page and every persisted
/// artifact (timetable, TTL label, bench-cache files) with it so that
/// corruption anywhere below the query layer is detected, never served.

/// Extends a running CRC-32C with `n` bytes. Pass the previous return
/// value as `crc` to checksum data incrementally; start from 0.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// One-shot CRC-32C of a buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace ptldb

#endif  // PTLDB_COMMON_CHECKSUM_H_
