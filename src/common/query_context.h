#ifndef PTLDB_COMMON_QUERY_CONTEXT_H_
#define PTLDB_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace ptldb {

/// Per-request deadline and cancellation state, propagated to the storage
/// engine through a thread-local slot (a query runs on one thread, the
/// same single-thread contract LocalQueryCounters relies on).
///
/// The serving layer (src/server) installs a context around each query it
/// executes; long-running engine loops — buffer-pool fetches, executor
/// materialization, TTL label scans, the per-target degradation fallback —
/// call CheckQueryCheckpoint() and unwind with kDeadlineExceeded when the
/// deadline has passed or the request was cancelled. Unwinding reuses the
/// ordinary Status error path, so every PageGuard pin and operator is
/// destroyed exactly as on a storage fault: a timed-out query leaves no
/// pinned frames and no half-updated state behind.
///
/// A context is owned by the request (the server's worker keeps it on its
/// stack); Cancel() may be called from any thread (it is one atomic
/// store), which is how a queued request is aborted after its deadline
/// passes without waiting for a worker to pick it up.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// No deadline, never cancelled (checkpoints are no-ops).
  QueryContext() = default;

  static QueryContext WithDeadline(Clock::time_point deadline) {
    QueryContext ctx;
    ctx.has_deadline_ = true;
    ctx.deadline_ = deadline;
    return ctx;
  }
  static QueryContext WithTimeout(std::chrono::nanoseconds timeout) {
    return WithDeadline(Clock::now() + timeout);
  }

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;
  QueryContext(QueryContext&& other) noexcept
      : has_deadline_(other.has_deadline_),
        deadline_(other.deadline_),
        cancelled_(other.cancelled_.load(std::memory_order_relaxed)) {}

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// Aborts the request: the next checkpoint on the executing thread
  /// returns non-OK. Safe from any thread, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Non-OK (kDeadlineExceeded) when the deadline has passed or Cancel()
  /// was called. Reads the clock, so hot loops should go through the
  /// decimated CheckQueryCheckpoint() instead.
  Status Check() const {
    if (cancelled()) {
      return Status::DeadlineExceeded("query cancelled");
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::Ok();
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::atomic<bool> cancelled_{false};
};

/// The context installed on the calling thread, or nullptr outside a
/// served request. Engine code reads it only through
/// CheckQueryCheckpoint(); the server installs it with
/// ScopedQueryContext.
const QueryContext* CurrentQueryContext();

/// Installs `ctx` as the calling thread's current context for the scope;
/// restores the previous context (normally nullptr — served queries do
/// not nest) on destruction. Pass nullptr to run a scope context-free.
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(const QueryContext* ctx);
  ~ScopedQueryContext();

  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

 private:
  const QueryContext* previous_;
};

/// Cooperative cancellation checkpoint for engine loops. With no context
/// installed this is one thread-local load; with a context it checks the
/// cancel flag every call but reads the clock only every
/// kCheckpointStride calls, so per-row loops can afford it. Returns
/// kDeadlineExceeded when the request should stop.
Status CheckQueryCheckpoint();

/// Clock reads happen on every stride-th checkpoint (cancel-flag checks
/// are unconditional). Exposed for tests asserting the grace bound.
inline constexpr uint32_t kCheckpointStride = 32;

}  // namespace ptldb

#endif  // PTLDB_COMMON_QUERY_CONTEXT_H_
