#include "common/string_util.h"

#include <cerrno>
#include <cstdlib>

namespace ptldb {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  // Strip a UTF-8 byte-order mark first.
  if (text.size() >= 3 && static_cast<unsigned char>(text[0]) == 0xEF &&
      static_cast<unsigned char>(text[1]) == 0xBB &&
      static_cast<unsigned char>(text[2]) == 0xBF) {
    text.remove_prefix(3);
  }
  while (!text.empty() &&
         (text.front() == ' ' || text.front() == '\t' || text.front() == '\r' ||
          text.front() == '\n')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r' ||
          text.back() == '\n')) {
    text.remove_suffix(1);
  }
  return text;
}

std::optional<int64_t> ParseInt(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const int64_t value = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace ptldb
