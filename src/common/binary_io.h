#ifndef PTLDB_COMMON_BINARY_IO_H_
#define PTLDB_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/checksum.h"
#include "common/status.h"

namespace ptldb {

/// Marker preceding the CRC-32C trailer of checksummed artifacts ("PTCK").
inline constexpr uint32_t kChecksumTrailerMagic = 0x4B435450u;

/// Little-endian binary file writer for index persistence (timetables,
/// labels, benchmark caches). Not a public storage format — both ends are
/// this library on the same machine. Every byte written is folded into a
/// running CRC-32C; FinishWithChecksum() appends it as a trailer that
/// BinaryReader::VerifyChecksum() checks on load.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return static_cast<bool>(out_); }

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteRaw(&value, sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(values.size());
    WriteRaw(values.data(), values.size() * sizeof(T));
  }

  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    WriteRaw(s.data(), s.size());
  }

  Status Finish() {
    out_.flush();
    if (!out_) return Status::IoError("binary write failed");
    return Status::Ok();
  }

  /// Appends the trailer (magic + CRC-32C of every byte written so far)
  /// and flushes. The trailer itself is excluded from the checksum.
  Status FinishWithChecksum() {
    const uint32_t crc = crc_;
    const uint32_t magic = kChecksumTrailerMagic;
    out_.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out_.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    return Finish();
  }

 private:
  void WriteRaw(const void* data, size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    crc_ = Crc32cExtend(crc_, data, n);
  }

  std::ofstream out_;
  uint32_t crc_ = 0;
};

/// Counterpart reader; every method reports corruption via ok(). A short
/// read trips the fail state immediately (never a zero-filled value), and
/// VerifyChecksum() validates the whole payload against the file trailer.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary) {
    if (in_) {
      in_.seekg(0, std::ios::end);
      file_size_ = static_cast<uint64_t>(in_.tellg());
      in_.seekg(0, std::ios::beg);
    }
  }

  bool ok() const { return static_cast<bool>(in_); }

  template <typename T>
  T Read() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    if (!ReadRaw(&value, sizeof(T))) value = T{};
    return value;
  }

  template <typename T>
  std::vector<T> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto size = Read<uint64_t>();
    std::vector<T> values;
    // A (possibly corrupt) count can never exceed what the file holds —
    // reject before resize() so garbage cannot trigger a huge allocation.
    if (!in_ || size > RemainingBytes() / sizeof(T)) {
      in_.setstate(std::ios::failbit);
      return values;
    }
    values.resize(size);
    if (!ReadRaw(values.data(), size * sizeof(T))) values.clear();
    return values;
  }

  std::string ReadString() {
    const auto size = Read<uint64_t>();
    std::string s;
    if (!in_ || size > RemainingBytes()) {
      in_.setstate(std::ios::failbit);
      return s;
    }
    s.resize(size);
    if (!ReadRaw(s.data(), size)) s.clear();
    return s;
  }

  /// Reads the trailer written by FinishWithChecksum() and compares it
  /// against the CRC-32C of every payload byte read so far. Must be
  /// called after the full payload has been consumed.
  Status VerifyChecksum() {
    const uint32_t actual = crc_;
    uint32_t magic = 0;
    uint32_t stored = 0;
    in_.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (!in_ || in_.gcount() != sizeof(stored) ||
        magic != kChecksumTrailerMagic) {
      in_.setstate(std::ios::failbit);
      return Status::Corruption("missing or truncated checksum trailer");
    }
    if (stored != actual) {
      in_.setstate(std::ios::failbit);
      return Status::Corruption("checksum mismatch: file is corrupted");
    }
    return Status::Ok();
  }

 private:
  uint64_t RemainingBytes() {
    const auto pos = in_.tellg();
    if (pos < 0) return 0;
    const auto at = static_cast<uint64_t>(pos);
    return at < file_size_ ? file_size_ - at : 0;
  }

  bool ReadRaw(void* data, size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<size_t>(in_.gcount()) != n) {
      in_.setstate(std::ios::failbit);
      return false;
    }
    crc_ = Crc32cExtend(crc_, data, n);
    return true;
  }

  std::ifstream in_;
  uint64_t file_size_ = 0;
  uint32_t crc_ = 0;
};

}  // namespace ptldb

#endif  // PTLDB_COMMON_BINARY_IO_H_
