#ifndef PTLDB_COMMON_BINARY_IO_H_
#define PTLDB_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace ptldb {

/// Little-endian binary file writer for index persistence (timetables,
/// labels, benchmark caches). Not a public storage format — both ends are
/// this library on the same machine.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return static_cast<bool>(out_); }

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<uint64_t>(values.size());
    out_.write(reinterpret_cast<const char*>(values.data()),
               static_cast<std::streamsize>(values.size() * sizeof(T)));
  }

  void WriteString(const std::string& s) {
    Write<uint64_t>(s.size());
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  Status Finish() {
    out_.flush();
    if (!out_) return Status::IoError("binary write failed");
    return Status::Ok();
  }

 private:
  std::ofstream out_;
};

/// Counterpart reader; every method reports corruption via ok().
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary) {}

  bool ok() const { return static_cast<bool>(in_); }

  template <typename T>
  T Read() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    return value;
  }

  template <typename T>
  std::vector<T> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto size = Read<uint64_t>();
    std::vector<T> values;
    if (!in_ || size > (1ULL << 40) / sizeof(T)) {  // Corruption guard.
      in_.setstate(std::ios::failbit);
      return values;
    }
    values.resize(size);
    in_.read(reinterpret_cast<char*>(values.data()),
             static_cast<std::streamsize>(size * sizeof(T)));
    return values;
  }

  std::string ReadString() {
    const auto size = Read<uint64_t>();
    std::string s;
    if (!in_ || size > (1ULL << 32)) {
      in_.setstate(std::ios::failbit);
      return s;
    }
    s.resize(size);
    in_.read(s.data(), static_cast<std::streamsize>(size));
    return s;
  }

 private:
  std::ifstream in_;
};

}  // namespace ptldb

#endif  // PTLDB_COMMON_BINARY_IO_H_
