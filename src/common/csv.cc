#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace ptldb {

Result<std::vector<std::string>> ParseCsvRecord(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
      } else {
        current.push_back(c);
        ++i;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::Corruption("quote inside unquoted CSV field");
      }
      in_quotes = true;
      ++i;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
    } else if (c == '\r' && i + 1 == line.size()) {
      ++i;  // Trailing carriage return from CRLF files.
    } else {
      current.push_back(c);
      ++i;
    }
  }
  if (in_quotes) return Status::Corruption("unterminated CSV quote");
  fields.push_back(std::move(current));
  return fields;
}

Result<CsvTable> CsvTable::Parse(std::string_view content) {
  CsvTable table;
  size_t start = 0;
  bool have_header = false;
  while (start <= content.size()) {
    if (start == content.size()) break;
    size_t end = content.find('\n', start);
    if (end == std::string_view::npos) end = content.size();
    std::string_view line = content.substr(start, end - start);
    start = end + 1;
    if (Trim(line).empty()) continue;
    auto fields = ParseCsvRecord(line);
    if (!fields.ok()) return fields.status();
    if (!have_header) {
      for (auto& f : *fields) f = std::string(Trim(f));
      table.header_ = std::move(*fields);
      for (size_t i = 0; i < table.header_.size(); ++i) {
        table.column_index_.emplace(table.header_[i], static_cast<int>(i));
      }
      have_header = true;
    } else {
      table.rows_.push_back(std::move(*fields));
    }
  }
  if (!have_header) return Status::Corruption("CSV file has no header row");
  return table;
}

Result<CsvTable> CsvTable::ParseFile(const std::string& path) {
  auto content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  return Parse(*content);
}

int CsvTable::ColumnIndex(std::string_view column) const {
  const auto it = column_index_.find(std::string(column));
  return it == column_index_.end() ? -1 : it->second;
}

const std::string& CsvTable::Field(size_t row, std::string_view column) const {
  const int idx = ColumnIndex(column);
  if (idx < 0) return empty_;
  const auto& fields = rows_[row];
  if (static_cast<size_t>(idx) >= fields.size()) return empty_;
  return fields[static_cast<size_t>(idx)];
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for " + path);
  return ss.str();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace ptldb
