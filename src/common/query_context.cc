#include "common/query_context.h"

namespace ptldb {

namespace {

/// The request context of the calling thread. One query runs on one
/// thread (the LocalQueryCounters contract), so a plain thread_local is
/// the whole propagation mechanism — no signature changes through the
/// operator tree.
thread_local const QueryContext* tls_query_context = nullptr;
/// Decimation counter for clock reads; per-thread, never reset (only its
/// value modulo kCheckpointStride matters).
thread_local uint32_t tls_checkpoint_calls = 0;

}  // namespace

const QueryContext* CurrentQueryContext() { return tls_query_context; }

ScopedQueryContext::ScopedQueryContext(const QueryContext* ctx)
    : previous_(tls_query_context) {
  tls_query_context = ctx;
}

ScopedQueryContext::~ScopedQueryContext() { tls_query_context = previous_; }

Status CheckQueryCheckpoint() {
  const QueryContext* ctx = tls_query_context;
  if (ctx == nullptr) return Status::Ok();
  if (ctx->cancelled()) {
    return Status::DeadlineExceeded("query cancelled");
  }
  if (!ctx->has_deadline()) return Status::Ok();
  if (++tls_checkpoint_calls % kCheckpointStride != 0) return Status::Ok();
  if (QueryContext::Clock::now() >= ctx->deadline()) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::Ok();
}

}  // namespace ptldb
