#ifndef PTLDB_COMMON_STRING_UTIL_H_
#define PTLDB_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ptldb {

/// Splits `text` on `sep`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace (and a UTF-8 BOM, which GTFS
/// files frequently start with).
std::string_view Trim(std::string_view text);

/// Strict base-10 integer parse of the whole string; nullopt on any junk.
std::optional<int64_t> ParseInt(std::string_view text);

/// Strict double parse of the whole string; nullopt on any junk.
std::optional<double> ParseDouble(std::string_view text);

/// Joins items with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace ptldb

#endif  // PTLDB_COMMON_STRING_UTIL_H_
