#ifndef PTLDB_COMMON_STATUS_H_
#define PTLDB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ptldb {

/// Outcome of an operation that can fail. PTLDB does not use exceptions
/// across its public API; fallible operations return Status (or Result<T>).
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
///
/// The class is [[nodiscard]]: a call site that ignores a returned
/// Status fails the build (-Werror=unused-result). Where dropping an
/// error is genuinely intended, say so with PTLDB_IGNORE_STATUS(expr) —
/// bare `(void)` casts are rejected by scripts/ptldb_lint.py.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kIoError,
    kUnsupported,
    kInternal,
    /// The serving layer refused the request without queueing it:
    /// admission control found the request queue full, or the overload
    /// controller is shedding this request's priority class. Retryable
    /// by the client after backoff; the query was never executed.
    kOverloaded,
    /// The request's deadline expired — either before execution started
    /// (dropped at the queue) or mid-query at a cooperative cancellation
    /// checkpoint (see common/query_context.h). Partial work is
    /// discarded; no answer is returned.
    kDeadlineExceeded,
  };

  /// Default-constructed Status is OK.
  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(Code::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string, "OK" for success.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// absl::StatusOr; only the pieces PTLDB needs. [[nodiscard]] like
/// Status: discarding a Result discards the error it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success) or a Status (failure),
  /// so `return value;` and `return Status::NotFound(...);` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define PTLDB_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::ptldb::Status _ptldb_status = (expr);    \
    if (!_ptldb_status.ok()) return _ptldb_status; \
  } while (false)

/// Explicitly discards a Status (or Result) where dropping the error is
/// a deliberate decision, e.g. best-effort cleanup on an already-failing
/// path. This is the only sanctioned way to ignore a fallible return:
/// scripts/ptldb_lint.py rejects bare `(void)` casts, and [[nodiscard]]
/// rejects silently ignored returns. Keep a comment at the call site
/// saying why the drop is safe.
#define PTLDB_IGNORE_STATUS(expr)      \
  do {                                 \
    const auto& _ptldb_ignored = (expr); \
    static_cast<void>(_ptldb_ignored); \
  } while (false)

}  // namespace ptldb

#endif  // PTLDB_COMMON_STATUS_H_
