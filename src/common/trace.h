#ifndef PTLDB_COMMON_TRACE_H_
#define PTLDB_COMMON_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace ptldb {

/// Per-query span tracer: a tree of named, timed spans with attached
/// counter stats, the structure behind EXPLAIN ANALYZE. A trace is
/// logically owned by one query — interleaved spans from several threads
/// produce a meaningless tree — but the mutating entry points are
/// internally latched, so a misplaced concurrent span can garble the
/// report, never memory. Passing nullptr everywhere a trace is accepted
/// disables tracing at near-zero cost.
class QueryTrace {
 public:
  struct Span {
    std::string name;
    uint64_t start_ns = 0;     ///< steady_clock offset from trace start.
    uint64_t duration_ns = 0;  ///< 0 while the span is still open.
    /// Counter deltas attached to the span, in insertion order
    /// (e.g. {"pool.misses", 12}). Deterministic given a fixed plan.
    std::vector<std::pair<std::string, uint64_t>> stats;
    std::vector<std::unique_ptr<Span>> children;
  };

  QueryTrace();

  /// Opens a child span under the innermost open span and makes it the
  /// innermost. Returns the span for AddStat on the caller's side.
  Span* Begin(const std::string& name);
  /// Closes the innermost open span, recording its duration.
  void End();
  /// Attaches a stat to the innermost open span (no-op if none is open).
  void AddStat(const std::string& key, uint64_t value);

  /// The synthetic root ("query"); its children are the top-level spans.
  /// Contract: call only after the trace has quiesced (no concurrent
  /// Begin/End/AddStat) — the returned reference walks the tree unlatched.
  const Span& root() const PTLDB_NO_THREAD_SAFETY_ANALYSIS { return *root_; }
  Span* mutable_root() PTLDB_NO_THREAD_SAFETY_ANALYSIS { return root_.get(); }

  /// Renders the span tree, one line per span:
  ///   name  [time=1.234 ms]  key=value key=value
  /// `include_timings=false` drops the wall-clock column — counter stats
  /// are deterministic, so that form is usable as a golden string.
  std::string ToString(bool include_timings = true) const;

  /// Renders the span tree as a JSON object:
  ///   {"name": ..., "start_ns": ..., "duration_ns": ...,
  ///    "stats": [["key", value], ...], "children": [...]}
  /// Stats stay an ordered pair list (insertion order, duplicate keys
  /// legal), matching the in-memory representation. Used by the tail
  /// sampler to embed full trees in retained traces.
  std::string ToJson() const;

  /// Nanoseconds since the trace was constructed (monotonic).
  uint64_t ElapsedNs() const;

 private:
  /// Latch over the span tree and the open-span stack. Leaf lock: held
  /// only for tree surgery, never across user code or engine calls.
  mutable Mutex mu_;
  /// Never reseated after construction; the *tree behind it* is guarded.
  std::unique_ptr<Span> root_ PTLDB_PT_GUARDED_BY(mu_);
  /// Stack of open spans; back() is innermost.
  std::vector<Span*> open_ PTLDB_GUARDED_BY(mu_);
  uint64_t epoch_ns_ = 0;  ///< steady_clock at construction; immutable.
};

/// RAII span: begins on construction, ends on destruction. Tolerates a
/// null trace, so call sites stay unconditional:
///   TraceSpan span(trace, "scan lout");
class TraceSpan {
 public:
  TraceSpan(QueryTrace* trace, const std::string& name) : trace_(trace) {
    if (trace_) trace_->Begin(name);
  }
  ~TraceSpan() {
    if (trace_) trace_->End();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void AddStat(const std::string& key, uint64_t value) {
    if (trace_) trace_->AddStat(key, value);
  }

 private:
  QueryTrace* trace_;
};

}  // namespace ptldb

#endif  // PTLDB_COMMON_TRACE_H_
