#ifndef PTLDB_COMMON_CSV_H_
#define PTLDB_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace ptldb {

/// Parses one RFC-4180 CSV record: fields separated by commas, optionally
/// quoted with '"', doubled quotes inside quoted fields. `line` must not
/// include the trailing newline. Returns the parsed fields or an error for
/// malformed quoting.
Result<std::vector<std::string>> ParseCsvRecord(std::string_view line);

/// A CSV file parsed into memory with a header row, as used by GTFS feeds.
/// Column access is by header name so feeds can reorder/add columns freely.
class CsvTable {
 public:
  /// Parses CSV `content` (full file body). The first record is the header.
  static Result<CsvTable> Parse(std::string_view content);

  /// Reads and parses the file at `path`.
  static Result<CsvTable> ParseFile(const std::string& path);

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }

  /// Index of `column` in the header, or -1 when absent.
  int ColumnIndex(std::string_view column) const;

  /// Field at (row, column name); empty string when the column is absent or
  /// the row is short. Precondition: row < num_rows().
  const std::string& Field(size_t row, std::string_view column) const;

  /// Raw fields of one row.
  const std::vector<std::string>& Row(size_t row) const { return rows_[row]; }

 private:
  std::vector<std::string> header_;
  std::unordered_map<std::string, int> column_index_;
  std::vector<std::vector<std::string>> rows_;
  std::string empty_;
};

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace ptldb

#endif  // PTLDB_COMMON_CSV_H_
