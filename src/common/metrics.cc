#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace ptldb {

size_t Counter::ShardIndex() {
  static thread_local const size_t index =
      std::hash<std::thread::id>()(std::this_thread::get_id()) % kNumShards;
  return index;
}

namespace {

// 8 sub-buckets per octave: bucket = 8 * octave + top-3-bits-below-msb.
// Values below 8 land in buckets [0, 8) exactly (one value per bucket).
constexpr int kSubBits = 3;
constexpr uint64_t kSubBuckets = 1u << kSubBits;  // 8

int Log2Floor(uint64_t v) {
  int log = 0;
  while (v >>= 1) ++log;
  return log;
}

}  // namespace

size_t Histogram::BucketOf(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  const int octave = Log2Floor(value);
  const uint64_t sub = (value >> (octave - kSubBits)) & (kSubBuckets - 1);
  return static_cast<size_t>(octave) * kSubBuckets + static_cast<size_t>(sub);
}

uint64_t Histogram::BucketLow(size_t bucket) {
  const uint64_t octave = bucket / kSubBuckets;
  if (octave < kSubBits) {
    // One value per bucket below 8. Indices 8..23 are never produced by
    // BucketOf (the first sub-divided octave starts at value 8, bucket
    // 24); treat them as empty ranges collapsed at 8 so BucketHigh stays
    // monotonic across the gap.
    return std::min<uint64_t>(bucket, kSubBuckets);
  }
  const uint64_t sub = bucket % kSubBuckets;
  return (uint64_t{1} << octave) | (sub << (octave - kSubBits));
}

uint64_t Histogram::BucketHigh(size_t bucket) {
  if (bucket + 1 >= kNumBuckets) return UINT64_MAX;
  return BucketLow(bucket + 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

HistogramSummary Histogram::Summary() const {
  HistogramSummary out;
  uint64_t buckets[kNumBuckets];
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    out.count += buckets[i];
  }
  if (out.count == 0) return out;
  out.sum = sum_.load(std::memory_order_relaxed);
  out.min = min_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);

  const auto quantile = [&](double q) {
    // Rank of the q-quantile among `out.count` samples, then linear
    // interpolation across the matched bucket's width.
    const double target = q * static_cast<double>(out.count - 1);
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      if (buckets[i] == 0) continue;
      if (static_cast<double>(seen + buckets[i]) > target) {
        const double lo = static_cast<double>(BucketLow(i));
        const double hi = static_cast<double>(BucketHigh(i));
        const double frac =
            (target - static_cast<double>(seen)) / static_cast<double>(buckets[i]);
        double v = lo + frac * (hi - lo);
        // Clamp to the observed range: single-sample buckets otherwise
        // report mid-bucket values above the true max.
        return std::min(std::max(v, static_cast<double>(out.min)),
                        static_cast<double>(out.max));
      }
      seen += buckets[i];
    }
    return static_cast<double>(out.max);
  };
  out.p50 = quantile(0.50);
  out.p95 = quantile(0.95);
  out.p99 = quantile(0.99);
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) out.histograms[name] = h->Summary();
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void MetricsRegistry::ResetPrefix(const std::string& prefix) {
  MutexLock lock(mu_);
  // std::map is ordered, so the prefix range is contiguous; a linear
  // scan is still fine at registry sizes (cold path).
  for (auto& [name, c] : counters_) {
    if (name.compare(0, prefix.size(), prefix) == 0) c->Reset();
  }
  for (auto& [name, h] : histograms_) {
    if (name.compare(0, prefix.size(), prefix) == 0) h->Reset();
  }
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = "ptldb_";
  for (char c : name) out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote and newline get a backslash escape.
std::string PromLabelEscape(const std::string& v) {
  std::string out;
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// One exported series: the Prometheus metric (family) name plus its
/// label pairs (without braces; empty for unlabeled series).
struct PromSeries {
  std::string family;
  std::string labels;
};

std::vector<std::string> SplitDots(const std::string& name) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : name) {
    if (c == '.') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string JoinMangled(const std::vector<std::string>& seg, size_t from) {
  std::string out;
  for (size_t i = from; i < seg.size(); ++i) {
    if (i != from) out += '_';
    for (char c : seg[i]) out += (c == '-') ? '_' : c;
  }
  return out;
}

bool IsQueryTypeName(const std::string& s) {
  static const char* kTypes[] = {"v2v_ea", "v2v_ld", "v2v_sd", "ea_knn",
                                 "ld_knn", "ea_otm", "ld_otm"};
  for (const char* t : kTypes) {
    if (s == t) return true;
  }
  return false;
}

/// Maps a dotted registry name to its Prometheus series. Names whose
/// middle segment is a known dimension become real labels; everything
/// else keeps the historical dot->underscore mangling. The query_type
/// rule is gated on the seven real type names so `query.degraded.*`
/// stays an ordinary metric.
PromSeries PromSplit(const std::string& name) {
  const std::vector<std::string> seg = SplitDots(name);
  if (seg.size() >= 3 && seg[0] == "query" && IsQueryTypeName(seg[1])) {
    return {"ptldb_query_" + JoinMangled(seg, 2),
            "query_type=\"" + PromLabelEscape(seg[1]) + "\""};
  }
  if (seg.size() == 3 && seg[0] == "server" &&
      (seg[1] == "latency" || seg[1] == "queue_wait") &&
      seg[2].size() > 3 &&
      seg[2].compare(seg[2].size() - 3, 3, "_ns") == 0) {
    const std::string cls = seg[2].substr(0, seg[2].size() - 3);
    return {"ptldb_server_" + seg[1] + "_ns",
            "class=\"" + PromLabelEscape(cls) + "\""};
  }
  if (seg.size() >= 3 && seg[0] == "phase") {
    return {"ptldb_phase_" + JoinMangled(seg, 2),
            "phase=\"" + PromLabelEscape(seg[1]) + "\""};
  }
  if (seg.size() == 3 && seg[0] == "querylog" && seg[1] == "outcome") {
    return {"ptldb_querylog_outcome",
            "outcome=\"" + PromLabelEscape(seg[2]) + "\""};
  }
  if (seg.size() == 3 && seg[0] == "traces" && seg[1] == "retained") {
    return {"ptldb_traces_retained",
            "reason=\"" + PromLabelEscape(seg[2]) + "\""};
  }
  return {PromName(name), ""};
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  // The exposition format requires all series of one metric to form a
  // single group under one # TYPE line, and labeled series of a family
  // (query.v2v_ea.count, query.v2v_sd.count, ...) interleave with other
  // families in our sorted name maps — so group by family first.
  std::string out;
  const auto braced = [](const std::string& labels) {
    return labels.empty() ? std::string() : "{" + labels + "}";
  };

  std::map<std::string, std::vector<std::pair<std::string, uint64_t>>>
      counter_groups;
  for (const auto& [name, v] : counters) {
    const PromSeries s = PromSplit(name);
    counter_groups[s.family].emplace_back(s.labels, v);
  }
  for (const auto& [family, series] : counter_groups) {
    out += "# TYPE " + family + " counter\n";
    for (const auto& [labels, v] : series) {
      out += family + braced(labels) + " " + std::to_string(v) + "\n";
    }
  }

  std::map<std::string, std::vector<std::pair<std::string, int64_t>>>
      gauge_groups;
  for (const auto& [name, v] : gauges) {
    const PromSeries s = PromSplit(name);
    gauge_groups[s.family].emplace_back(s.labels, v);
  }
  for (const auto& [family, series] : gauge_groups) {
    out += "# TYPE " + family + " gauge\n";
    for (const auto& [labels, v] : series) {
      out += family + braced(labels) + " " + std::to_string(v) + "\n";
    }
  }

  std::map<std::string, std::vector<std::pair<std::string, HistogramSummary>>>
      histogram_groups;
  for (const auto& [name, h] : histograms) {
    const PromSeries s = PromSplit(name);
    histogram_groups[s.family].emplace_back(s.labels, h);
  }
  for (const auto& [family, series] : histogram_groups) {
    out += "# TYPE " + family + " summary\n";
    for (const auto& [labels, h] : series) {
      const std::string sep = labels.empty() ? "" : labels + ",";
      out += family + "{" + sep + "quantile=\"0.5\"} " + Num(h.p50) + "\n";
      out += family + "{" + sep + "quantile=\"0.95\"} " + Num(h.p95) + "\n";
      out += family + "{" + sep + "quantile=\"0.99\"} " + Num(h.p99) + "\n";
      out += family + "_sum" + braced(labels) + " " + std::to_string(h.sum) +
             "\n";
      out += family + "_count" + braced(labels) + " " +
             std::to_string(h.count) + "\n";
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": " + std::to_string(v);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + std::to_string(h.sum) +
           ", \"min\": " + std::to_string(h.min) +
           ", \"max\": " + std::to_string(h.max) + ", \"p50\": " + Num(h.p50) +
           ", \"p95\": " + Num(h.p95) + ", \"p99\": " + Num(h.p99) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

LocalQueryCounters& ThisThreadQueryCounters() {
  static thread_local LocalQueryCounters counters;
  return counters;
}

}  // namespace ptldb
