#include "common/trace.h"

#include <chrono>
#include <cstdio>

namespace ptldb {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

QueryTrace::QueryTrace() : epoch_ns_(NowNs()) {
  root_ = std::make_unique<Span>();
  root_->name = "query";
  open_.push_back(root_.get());
}

uint64_t QueryTrace::ElapsedNs() const { return NowNs() - epoch_ns_; }

QueryTrace::Span* QueryTrace::Begin(const std::string& name) {
  auto span = std::make_unique<Span>();
  span->name = name;
  span->start_ns = ElapsedNs();
  Span* raw = span.get();
  MutexLock lock(mu_);
  open_.back()->children.push_back(std::move(span));
  open_.push_back(raw);
  return raw;
}

void QueryTrace::End() {
  MutexLock lock(mu_);
  if (open_.size() <= 1) return;  // Never pop the root.
  Span* span = open_.back();
  span->duration_ns = ElapsedNs() - span->start_ns;
  open_.pop_back();
}

void QueryTrace::AddStat(const std::string& key, uint64_t value) {
  MutexLock lock(mu_);
  open_.back()->stats.emplace_back(key, value);
}

namespace {

void Render(const QueryTrace::Span& span, int depth, bool include_timings,
            std::string* out) {
  for (int i = 0; i < depth; ++i) *out += "  ";
  *out += span.name;
  if (include_timings) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "  [time=%.3f ms]",
                  static_cast<double>(span.duration_ns) / 1e6);
    *out += buf;
  }
  for (const auto& [key, value] : span.stats) {
    *out += "  " + key + "=" + std::to_string(value);
  }
  *out += "\n";
  for (const auto& child : span.children) {
    Render(*child, depth + 1, include_timings, out);
  }
}

}  // namespace

namespace {

void EscapeJsonInto(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
}

void RenderJson(const QueryTrace::Span& span, std::string* out) {
  *out += "{\"name\": \"";
  EscapeJsonInto(span.name, out);
  *out += "\", \"start_ns\": " + std::to_string(span.start_ns);
  *out += ", \"duration_ns\": " + std::to_string(span.duration_ns);
  *out += ", \"stats\": [";
  bool first = true;
  for (const auto& [key, value] : span.stats) {
    if (!first) *out += ", ";
    first = false;
    *out += "[\"";
    EscapeJsonInto(key, out);
    *out += "\", " + std::to_string(value) + "]";
  }
  *out += "], \"children\": [";
  first = true;
  for (const auto& child : span.children) {
    if (!first) *out += ", ";
    first = false;
    RenderJson(*child, out);
  }
  *out += "]}";
}

}  // namespace

std::string QueryTrace::ToJson() const {
  MutexLock lock(mu_);
  std::string out;
  RenderJson(*root_, &out);
  return out;
}

std::string QueryTrace::ToString(bool include_timings) const {
  MutexLock lock(mu_);
  std::string out;
  // Report the root's duration as total elapsed if it was never closed.
  const Span* r = root_.get();
  if (include_timings && r->duration_ns == 0) {
    // Shallow header line only; children render from the real tree.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s  [time=%.3f ms]", r->name.c_str(),
                  static_cast<double>(ElapsedNs()) / 1e6);
    out += buf;
    for (const auto& [key, value] : r->stats) {
      out += "  " + key + "=" + std::to_string(value);
    }
    out += "\n";
    for (const auto& child : r->children) {
      Render(*child, 1, include_timings, &out);
    }
    return out;
  }
  Render(*r, 0, include_timings, &out);
  return out;
}

}  // namespace ptldb
