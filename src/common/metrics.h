#ifndef PTLDB_COMMON_METRICS_H_
#define PTLDB_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"

namespace ptldb {

/// Unified metrics layer: named counters, gauges and log-bucketed latency
/// histograms collected in a thread-safe registry, plus the per-thread
/// execution counters that give queries exact operation-level accounting
/// (the measurements behind the paper's Figures 2-8).
///
/// Naming scheme: dot-separated `component.metric[.unit]`, e.g.
/// `device.read_ns`, `bufferpool.misses`, `query.v2v_ea.latency_ns`.
/// Exporters sanitize names for their format (Prometheus: dots become
/// underscores and a `ptldb_` prefix is added).

/// Monotonic counter, sharded across cache lines so concurrent increments
/// from many threads do not bounce one hot line. Increments are relaxed
/// atomics: exact totals, no ordering guarantees with other memory.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kNumShards = 16;
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  /// Stable per-thread shard choice (hashed thread identity).
  static size_t ShardIndex();

  Shard shards_[kNumShards];
};

/// Last-write-wins instantaneous value (queue depths, resident pages).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  void Max(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Percentile summary of a Histogram at snapshot time. Quantiles are
/// interpolated within the matched log bucket, so their relative error is
/// bounded by the bucket resolution (about 1/8 of the value).
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Log-bucketed latency histogram: 8 sub-buckets per power of two
/// (values below 8 are exact), covering the full uint64 range. Recording
/// is one relaxed atomic increment; percentiles are computed on snapshot.
class Histogram {
 public:
  void Record(uint64_t value);
  HistogramSummary Summary() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

  /// Bucket index of a value (exposed for tests).
  static size_t BucketOf(uint64_t value);
  /// Inclusive lower / exclusive upper bound of a bucket.
  static uint64_t BucketLow(size_t bucket);
  static uint64_t BucketHigh(size_t bucket);

  static constexpr size_t kNumBuckets = 64 * 8;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time copy of every metric in a registry. Plain data: safe to
/// keep, diff, or serialize after the registry has moved on (snapshot
/// isolation — later increments do not alter an existing snapshot).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// Prometheus text exposition format (`ptldb_` prefix, dots -> underscores,
  /// histograms as summaries with quantile labels). Names whose middle
  /// segment is a recognized dimension are emitted as real Prometheus
  /// labels instead of being mangled into the metric name:
  ///   query.v2v_ea.count        -> ptldb_query_count{query_type="v2v_ea"}
  ///   server.latency.expensive_ns
  ///                             -> ptldb_server_latency_ns{class="expensive"}
  ///   phase.merge.io_ns         -> ptldb_phase_io_ns{phase="merge"}
  ///   querylog.outcome.shed     -> ptldb_querylog_outcome{outcome="shed"}
  ///   traces.retained.sampled   -> ptldb_traces_retained{reason="sampled"}
  /// Label values are escaped per the exposition format (backslash,
  /// quote, newline). Series of one family are emitted as one group
  /// under a single # TYPE line, as the format requires.
  std::string ToPrometheusText() const;
  /// Nested JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, p50, p95, p99}}}.
  std::string ToJson() const;
};

/// Thread-safe registry of named metrics. Lookup-or-create is mutex
/// protected (cold path); the returned pointers are stable for the
/// registry's lifetime, so hot paths hold them and never re-look-up.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered metric (benchmark phase boundaries).
  void ResetAll();
  /// Zeroes every counter and histogram whose name starts with `prefix`
  /// (e.g. "server." / "ttl.labels."), so callers can carve per-window
  /// deltas out of process-lifetime totals the way ResetIoStats() does
  /// for the device. Gauges are deliberately excluded: they are
  /// instantaneous readings (resident bytes, queue depth), not
  /// accumulations, and zeroing them would fabricate state.
  void ResetPrefix(const std::string& prefix);

 private:
  /// Registry latch (cold path only): guards the name->metric maps. The
  /// metric objects themselves are lock-free; returned pointers outlive
  /// the latch by design.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PTLDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ PTLDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PTLDB_GUARDED_BY(mu_);
};

/// Per-thread execution counters incremented by the storage engine, the
/// executor and the TTL label-merge code. Plain (non-atomic) fields: each
/// thread only ever touches its own instance, so increments are free of
/// both races and atomic traffic. A query runs on one thread, so the
/// delta of these counters around a query is its exact operation count;
/// the facade and the SQL interpreter flush such deltas into their
/// database's MetricsRegistry after every query.
struct LocalQueryCounters {
  uint64_t tuples_scanned = 0;     ///< Heap tuples materialized.
  uint64_t index_seeks = 0;        ///< B-tree descents (Get / Seek).
  uint64_t rows_emitted = 0;       ///< Rows drained from plan roots.
  uint64_t hubs_merged = 0;        ///< Common-hub groups visited in merges.
  uint64_t label_comparisons = 0;  ///< Label tuple comparisons in merges.
  uint64_t label_decodes = 0;      ///< Compressed label buckets decoded.
  uint64_t label_decode_bytes = 0;  ///< Encoded bytes those decodes read.
  /// Compiled-query VM work units: one per instruction dispatch, per
  /// bucket probe and per candidate tuple examined in the fused scan
  /// macro-ops (see engine/vm.h). Zero on every interpreter path, so a
  /// nonzero delta proves a query really ran compiled.
  uint64_t vm_steps = 0;
  /// Modeled device I/O ns charged to this thread (page transfers plus
  /// retry-backoff waits). Mirrors the StorageDevice global atomics, but
  /// per-thread, so a query's I/O attribution stays exact under
  /// concurrency.
  uint64_t modeled_io_ns = 0;

  LocalQueryCounters operator-(const LocalQueryCounters& o) const {
    return {tuples_scanned - o.tuples_scanned, index_seeks - o.index_seeks,
            rows_emitted - o.rows_emitted, hubs_merged - o.hubs_merged,
            label_comparisons - o.label_comparisons,
            label_decodes - o.label_decodes,
            label_decode_bytes - o.label_decode_bytes,
            vm_steps - o.vm_steps,
            modeled_io_ns - o.modeled_io_ns};
  }
};

/// The calling thread's counters.
LocalQueryCounters& ThisThreadQueryCounters();

}  // namespace ptldb

#endif  // PTLDB_COMMON_METRICS_H_
