#include "common/time_types.h"

#include <cstdio>
#include <cstdlib>

namespace ptldb {
namespace internal {

void StoredTimeNarrowingFault(int64_t seconds) {
  // Fatal-path diagnostic: the process is about to abort because a
  // compute-tier time escaped the stored range on a *data* (not
  // predicate) boundary, meaning the index or an on-disk format would be
  // corrupt. stderr is the only channel guaranteed to still exist here.
  std::fprintf(stderr,
               "ptldb: fatal: time value %lld s does not fit the 32-bit "
               "stored encoding (checked narrowing boundary)\n",
               static_cast<long long>(seconds));
  std::abort();
}

}  // namespace internal
}  // namespace ptldb
