#ifndef PTLDB_COMMON_RNG_H_
#define PTLDB_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace ptldb {

/// Deterministic pseudo-random generator (xoshiro256**). All randomized
/// pieces of PTLDB (dataset generation, benchmark workloads, property tests)
/// take an explicit Rng so that every run is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// k distinct values sampled uniformly from [0, n). Precondition: k <= n.
  std::vector<uint32_t> SampleDistinct(uint32_t n, uint32_t k);

 private:
  uint64_t state_[4];
};

}  // namespace ptldb

#endif  // PTLDB_COMMON_RNG_H_
