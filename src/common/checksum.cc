#include "common/checksum.h"

#include <array>
#include <bit>
#include <cstring>

namespace ptldb {
namespace {

/// Slice-by-8 lookup tables, generated once at startup. Table 0 is the
/// plain byte-at-a-time table for the reflected polynomial; tables 1-7
/// advance a byte's contribution past k additional zero bytes, letting the
/// hot loop fold eight input bytes per iteration. This keeps the page
/// verification on every buffer-pool miss well under the <5% scan-time
/// budget without requiring SSE4.2.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto& t = tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Byte-at-a-time until 8-byte alignment.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --n;
  }
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      uint64_t chunk;
      std::memcpy(&chunk, p, 8);
      chunk ^= crc;  // Low 4 bytes fold the running CRC.
      crc = t[7][chunk & 0xFFu] ^ t[6][(chunk >> 8) & 0xFFu] ^
            t[5][(chunk >> 16) & 0xFFu] ^ t[4][(chunk >> 24) & 0xFFu] ^
            t[3][(chunk >> 32) & 0xFFu] ^ t[2][(chunk >> 40) & 0xFFu] ^
            t[1][(chunk >> 48) & 0xFFu] ^ t[0][(chunk >> 56) & 0xFFu];
      p += 8;
      n -= 8;
    }
  }
  while (n > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

}  // namespace ptldb
