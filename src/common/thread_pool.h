#ifndef PTLDB_COMMON_THREAD_POOL_H_
#define PTLDB_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace ptldb {

/// A small work-stealing thread pool used by the parallel TTL build and the
/// derived-table construction (see DESIGN.md, "Wave-parallel preprocessing").
///
/// Each worker owns a deque: tasks submitted from that worker go to its
/// back (LIFO, cache-friendly); idle workers steal from the front of a
/// victim's deque (FIFO, oldest first). External submissions are spread
/// round-robin. Scheduling order is nondeterministic by design — callers
/// that need deterministic results must make their tasks commutative
/// (write to disjoint slots) and sequence any order-dependent work
/// themselves, which is exactly how the TTL wave merge uses it.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means DefaultThreadCount().
  explicit ThreadPool(uint32_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Schedules one task. Thread-safe; may be called from inside a task.
  /// If the pool is already shutting down, the task runs inline on the
  /// submitting thread instead of being queued — Submit never silently
  /// drops work and never strands a task in a deque no worker will scan.
  void Submit(std::function<void()> fn);

  /// Stops the workers and joins them. Queued tasks are drained (run to
  /// completion) before the workers exit, and tasks submitted concurrently
  /// with — or after — Shutdown() run inline on their submitter, so
  /// pending() is exactly 0 once Shutdown() returns and no task is ever
  /// orphaned. Idempotent; the destructor calls it. Must not be invoked
  /// from inside a pool task or from two threads at once.
  void Shutdown();

  /// Blocks until every task submitted so far has finished. Must not be
  /// called from inside a pool task.
  void Wait();

  /// Runs fn(worker, i) for every i in [0, n) across the pool and waits.
  /// `worker` is the executing worker's index in [0, num_threads()), so
  /// callers can keep per-worker scratch without locking. Iterations are
  /// claimed dynamically; any iteration may run on any worker. Must not be
  /// called from inside a pool task.
  void ParallelFor(uint64_t n,
                   const std::function<void(uint32_t, uint64_t)>& fn);

  /// Tasks executed since construction / tasks obtained by stealing from
  /// another worker's deque (a subset of executed()).
  uint64_t executed() const { return executed_.load(std::memory_order_relaxed); }
  uint64_t stolen() const { return stolen_.load(std::memory_order_relaxed); }
  /// Tasks submitted but not yet finished (instantaneous queue depth plus
  /// in-flight tasks) and the high-water mark of that value over the
  /// pool's lifetime — the `threadpool.max_queue_depth` gauge.
  uint64_t pending() const { return pending_.load(std::memory_order_relaxed); }
  uint64_t max_pending() const {
    return max_pending_.load(std::memory_order_relaxed);
  }

  /// One worker per hardware thread, at least 1.
  static uint32_t DefaultThreadCount();

 private:
  struct Worker {
    Mutex mu;  ///< Deque latch; leaf lock, nothing acquired under it.
    std::deque<std::function<void()>> tasks PTLDB_GUARDED_BY(mu);
    std::thread thread;
  };

  void WorkerLoop(uint32_t id);
  /// Pops from own back, else steals from another front. Empty when idle.
  std::function<void()> FindTask(uint32_t id);
  void RunTask(std::function<void()> task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> next_victim_{0};  ///< Round-robin submit target.
  std::atomic<uint64_t> pending_{0};      ///< Submitted but not finished.
  std::atomic<uint64_t> max_pending_{0};  ///< High-water mark of pending_.
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> stolen_{0};

  /// Sleep/wake and shutdown state. Lock order: idle_mu_ may be acquired
  /// BEFORE a Worker::mu (Submit holds it across the enqueue so the
  /// stop_ check and the push are one atomic decision), never after.
  Mutex idle_mu_;
  CondVar idle_cv_;   ///< Wakes sleeping workers.
  CondVar done_cv_;   ///< Wakes Wait().
  uint64_t wake_version_ PTLDB_GUARDED_BY(idle_mu_) = 0;
  bool stop_ PTLDB_GUARDED_BY(idle_mu_) = false;
};

}  // namespace ptldb

#endif  // PTLDB_COMMON_THREAD_POOL_H_
