#include "common/query_log.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/status.h"

namespace ptldb {

namespace internal {
thread_local RequestRecorder* g_current_recorder = nullptr;
}  // namespace internal

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// splitmix64 finalizer: the 1-in-N trace sample must be seed-stable and
// uncorrelated with request order, so it hashes the seq instead of
// taking `seq % N` (which would alias with any periodic workload).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

constexpr const char* kPhaseNames[kNumQueryPhases] = {
    "queue_wait", "admission",  "plan",     "label_decode",
    "merge",      "buffer_io",  "callback", "other"};

constexpr const char* kOutcomeNames[kNumQueryOutcomes] = {"ok", "shed",
                                                          "deadline", "error"};

}  // namespace

const char* QueryPhaseName(QueryPhase phase) {
  return kPhaseNames[static_cast<size_t>(phase)];
}

const char* QueryOutcomeName(QueryOutcome outcome) {
  return kOutcomeNames[static_cast<size_t>(outcome)];
}

QueryOutcome OutcomeForStatus(const Status& status, const char** cause) {
  *cause = nullptr;
  switch (status.code()) {
    case Status::Code::kOk:
      return QueryOutcome::kOk;
    case Status::Code::kDeadlineExceeded:
      *cause = "exec";
      return QueryOutcome::kDeadline;
    case Status::Code::kOverloaded:
      *cause = "shed";
      return QueryOutcome::kShed;
    case Status::Code::kInvalidArgument:
      *cause = "invalid_arg";
      break;
    case Status::Code::kNotFound:
      *cause = "not_found";
      break;
    case Status::Code::kCorruption:
      *cause = "corruption";
      break;
    case Status::Code::kIoError:
      *cause = "io_error";
      break;
    case Status::Code::kUnsupported:
      *cause = "unsupported";
      break;
    case Status::Code::kInternal:
      *cause = "internal";
      break;
  }
  return QueryOutcome::kError;
}

QueryLog::QueryLog(const QueryLogOptions& options, MetricsRegistry* metrics)
    : options_(options),
      metrics_(metrics),
      enabled_(options.enabled),
      slow_threshold_ns_(options.slow_floor_ns) {
  if (options_.capacity == 0) options_.capacity = 1;
  options_.shards = std::clamp<size_t>(options_.shards, 1, options_.capacity);
  per_shard_cap_ = (options_.capacity + options_.shards - 1) / options_.shards;
  for (size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    {
      // Pre-size the ring once; appends never allocate.
      MutexLock lock(shard->mu);
      shard->ring.resize(per_shard_cap_);
    }
    shards_.push_back(std::move(shard));
  }
  if (metrics_ == nullptr) return;
  for (size_t p = 0; p < kNumQueryPhases; ++p) {
    const std::string base = std::string("phase.") + kPhaseNames[p];
    phase_ns_[p] = metrics_->histogram(base + ".ns");
    phase_io_ns_[p] = metrics_->counter(base + ".io_ns");
    phase_label_decodes_[p] = metrics_->counter(base + ".label_decodes");
    phase_label_comparisons_[p] =
        metrics_->counter(base + ".label_comparisons");
    phase_hubs_merged_[p] = metrics_->counter(base + ".hubs_merged");
  }
  records_ = metrics_->counter("querylog.records");
  latency_total_ns_ = metrics_->counter("querylog.latency_ns");
  slow_ = metrics_->counter("querylog.slow");
  for (size_t o = 0; o < kNumQueryOutcomes; ++o) {
    outcome_[o] =
        metrics_->counter(std::string("querylog.outcome.") + kOutcomeNames[o]);
  }
  retained_slow_ = metrics_->counter("traces.retained.slow");
  retained_shed_ = metrics_->counter("traces.retained.shed");
  retained_deadline_ = metrics_->counter("traces.retained.deadline");
  retained_error_ = metrics_->counter("traces.retained.error");
  retained_sampled_ = metrics_->counter("traces.retained.sampled");
  trace_evictions_ = metrics_->counter("querylog.trace_evictions");
}

uint64_t QueryLog::Append(QueryLogRecord rec, const std::string& trace_json) {
  if (!enabled()) return 0;
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  rec.seq = seq;
  latency_.Record(rec.latency_ns);
  if (seq % 64 == 0) {
    // Refresh the slow threshold from our own latency distribution.
    // Amortized: a Summary() walk every 64 appends. The p99 clause only
    // engages once the distribution has some mass; before that the
    // floor alone classifies.
    const HistogramSummary s = latency_.Summary();
    uint64_t threshold = options_.slow_floor_ns;
    if (s.count >= 32) {
      threshold = std::max<uint64_t>(
          threshold,
          static_cast<uint64_t>(options_.slow_multiplier * s.p99));
    }
    slow_threshold_ns_.store(threshold, std::memory_order_relaxed);
  }
  rec.slow =
      rec.latency_ns > slow_threshold_ns_.load(std::memory_order_relaxed);

  // Tail sampling: every non-ok or slow request keeps its trace; a seeded
  // 1-in-N hash of the seq samples the normal population.
  const char* reason = nullptr;
  Counter* reason_counter = nullptr;
  switch (rec.outcome) {
    case QueryOutcome::kShed:
      reason = "shed";
      reason_counter = retained_shed_;
      break;
    case QueryOutcome::kDeadline:
      reason = "deadline";
      reason_counter = retained_deadline_;
      break;
    case QueryOutcome::kError:
      reason = "error";
      reason_counter = retained_error_;
      break;
    case QueryOutcome::kOk:
      if (rec.slow) {
        reason = "slow";
        reason_counter = retained_slow_;
      } else if (options_.sample_every > 0 &&
                 Mix64(seq ^ options_.sample_seed) % options_.sample_every ==
                     0) {
        reason = "sampled";
        reason_counter = retained_sampled_;
      }
      break;
  }
  rec.trace_retained = reason != nullptr;

  PublishMetrics(rec);
  if (reason != nullptr) {
    if (reason_counter != nullptr) reason_counter->Add();
    RetainTrace(rec, reason, trace_json);
  }

  Shard& shard = *shards_[seq % shards_.size()];
  MutexLock lock(shard.mu);
  shard.ring[shard.next] = rec;
  shard.next = (shard.next + 1) % per_shard_cap_;
  if (shard.filled < per_shard_cap_) ++shard.filled;
  return seq;
}

void QueryLog::PublishMetrics(const QueryLogRecord& rec) {
  if (metrics_ == nullptr) return;
  records_->Add();
  latency_total_ns_->Add(rec.latency_ns);
  outcome_[static_cast<size_t>(rec.outcome)]->Add();
  if (rec.slow) slow_->Add();
  for (size_t p = 0; p < kNumQueryPhases; ++p) {
    // Zero phases are skipped entirely: sums stay exact (adding zero
    // changes nothing) and idle phases do not inflate histogram counts.
    if (rec.phases.ns[p] != 0) phase_ns_[p]->Record(rec.phases.ns[p]);
    if (rec.phases.io_ns[p] != 0) phase_io_ns_[p]->Add(rec.phases.io_ns[p]);
    if (rec.phases.label_decodes[p] != 0) {
      phase_label_decodes_[p]->Add(rec.phases.label_decodes[p]);
    }
    if (rec.phases.label_comparisons[p] != 0) {
      phase_label_comparisons_[p]->Add(rec.phases.label_comparisons[p]);
    }
    if (rec.phases.hubs_merged[p] != 0) {
      phase_hubs_merged_[p]->Add(rec.phases.hubs_merged[p]);
    }
  }
}

void QueryLog::RetainTrace(const QueryLogRecord& rec, const char* reason,
                           const std::string& full_trace_json) {
  RetainedTrace t;
  t.seq = rec.seq;
  QueryLogRecord::SetName(t.type, sizeof(t.type), rec.type);
  QueryLogRecord::SetName(t.reason, sizeof(t.reason), reason);
  t.latency_ns = rec.latency_ns;
  t.json = TraceJson(rec, reason, full_trace_json);
  MutexLock lock(trace_mu_);
  while (traces_.size() >= options_.trace_capacity && !traces_.empty()) {
    traces_.pop_front();
    if (trace_evictions_ != nullptr) trace_evictions_->Add();
  }
  if (options_.trace_capacity > 0) traces_.push_back(std::move(t));
}

std::string QueryLog::TraceJson(const QueryLogRecord& rec, const char* reason,
                                const std::string& full_trace_json) {
  std::string out = "{";
  out += "\"seq\": " + std::to_string(rec.seq);
  out += ", \"type\": \"" + JsonEscape(rec.type) + "\"";
  out += ", \"reason\": \"" + JsonEscape(reason) + "\"";
  out += ", \"outcome\": \"" + std::string(QueryOutcomeName(rec.outcome)) +
         "\"";
  out += ", \"cause\": \"" + JsonEscape(rec.cause) + "\"";
  out += std::string(", \"degraded\": ") + (rec.degraded ? "true" : "false");
  out += ", \"latency_ns\": " + std::to_string(rec.latency_ns);
  out += ", \"args\": {\"s\": " + std::to_string(rec.s) +
         ", \"g\": " + std::to_string(rec.g) +
         ", \"t\": " + std::to_string(rec.t.raw_seconds()) +
         ", \"t_end\": " + std::to_string(rec.t_end.raw_seconds()) +
         ", \"k\": " + std::to_string(rec.k) + ", \"set\": \"" +
         JsonEscape(rec.set_name) + "\"}";
  out += ", \"spans\": [";
  bool first = true;
  for (size_t p = 0; p < kNumQueryPhases; ++p) {
    const PhaseBreakdown& ph = rec.phases;
    if (ph.ns[p] == 0 && ph.io_ns[p] == 0 && ph.label_decodes[p] == 0 &&
        ph.label_comparisons[p] == 0 && ph.hubs_merged[p] == 0) {
      continue;
    }
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + std::string(kPhaseNames[p]) + "\"";
    out += ", \"ns\": " + std::to_string(ph.ns[p]);
    if (ph.io_ns[p] != 0) out += ", \"io_ns\": " + std::to_string(ph.io_ns[p]);
    if (ph.label_decodes[p] != 0) {
      out += ", \"label_decodes\": " + std::to_string(ph.label_decodes[p]);
    }
    if (ph.label_comparisons[p] != 0) {
      out +=
          ", \"label_comparisons\": " + std::to_string(ph.label_comparisons[p]);
    }
    if (ph.hubs_merged[p] != 0) {
      out += ", \"hubs_merged\": " + std::to_string(ph.hubs_merged[p]);
    }
    out += "}";
  }
  out += "]";
  if (!full_trace_json.empty()) out += ", \"trace\": " + full_trace_json;
  out += "}";
  return out;
}

std::vector<QueryLogRecord> QueryLog::SnapshotRecords() const {
  std::vector<QueryLogRecord> out;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    // Oldest-first within the shard: the ring wraps at `next`.
    const size_t start =
        (shard->next + per_shard_cap_ - shard->filled) % per_shard_cap_;
    for (size_t i = 0; i < shard->filled; ++i) {
      out.push_back(shard->ring[(start + i) % per_shard_cap_]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const QueryLogRecord& a, const QueryLogRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<RetainedTrace> QueryLog::SnapshotTraces() const {
  MutexLock lock(trace_mu_);
  return {traces_.begin(), traces_.end()};
}

RequestRecorder::RequestRecorder(QueryLog* log) {
  if (log == nullptr || !log->enabled() ||
      internal::g_current_recorder != nullptr) {
    return;
  }
  log_ = log;
  internal::g_current_recorder = this;
  phase_start_ns_ = NowNs();
  rec_.start_ns = phase_start_ns_;
  base_ = ThisThreadQueryCounters();
}

RequestRecorder::~RequestRecorder() {
  if (log_ != nullptr && !finished_) {
    // Exactly-once backstop: a recorder destroyed without Finish (early
    // return, exception unwind) still leaves a record.
    Finish(QueryOutcome::kError, "abandoned");
  }
  if (internal::g_current_recorder == this) {
    internal::g_current_recorder = nullptr;
  }
}

QueryPhase RequestRecorder::SwitchPhase(QueryPhase phase) {
  if (log_ == nullptr || finished_) return phase;
  const uint64_t now = NowNs();
  const LocalQueryCounters& cur = ThisThreadQueryCounters();
  const size_t i = static_cast<size_t>(current_);
  rec_.phases.ns[i] += now - phase_start_ns_;
  rec_.phases.io_ns[i] += cur.modeled_io_ns - base_.modeled_io_ns;
  rec_.phases.label_decodes[i] += cur.label_decodes - base_.label_decodes;
  rec_.phases.label_comparisons[i] +=
      cur.label_comparisons - base_.label_comparisons;
  rec_.phases.hubs_merged[i] += cur.hubs_merged - base_.hubs_merged;
  phase_start_ns_ = now;
  base_ = cur;
  const QueryPhase previous = current_;
  current_ = phase;
  return previous;
}

uint64_t RequestRecorder::Finish(QueryOutcome outcome, const char* cause) {
  if (log_ == nullptr || finished_) return 0;
  SwitchPhase(QueryPhase::kOther);  // Charge the still-open phase.
  finished_ = true;
  rec_.outcome = outcome;
  if (cause != nullptr) rec_.set_cause(cause);
  rec_.latency_ns = rec_.phases.total_ns();
  internal::g_current_recorder = nullptr;
  return log_->Append(rec_, trace_json_);
}

}  // namespace ptldb
