#include "common/thread_pool.h"

#include <algorithm>

namespace ptldb {

namespace {

/// Index of the pool worker running the current thread, or -1 outside the
/// pool. Each ThreadPool sets it for its own threads; pools are not nested.
thread_local int32_t tls_worker_id = -1;

}  // namespace

uint32_t ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(uint32_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    MutexLock lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.NotifyAll();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  const uint64_t now = pending_.fetch_add(1, std::memory_order_acq_rel) + 1;
  uint64_t hi = max_pending_.load(std::memory_order_relaxed);
  while (now > hi && !max_pending_.compare_exchange_weak(
                         hi, now, std::memory_order_relaxed)) {
  }
  uint32_t target;
  if (tls_worker_id >= 0 &&
      static_cast<uint32_t>(tls_worker_id) < workers_.size()) {
    target = static_cast<uint32_t>(tls_worker_id);
  } else {
    target = static_cast<uint32_t>(
        next_victim_.fetch_add(1, std::memory_order_relaxed) %
        workers_.size());
  }
  // The stop_ check and the enqueue are one critical section under
  // idle_mu_: a task is either pushed strictly before stop_ is set (and
  // the exiting workers' drain pass will find it) or observes stop_ and
  // runs inline here. Without this atomicity a task pushed between a
  // worker's final empty scan and its stop_ check would be orphaned —
  // every worker exits, the deque keeps the task, and Wait() hangs on a
  // pending_ count that can never reach zero.
  MutexLock lock(idle_mu_);
  if (stop_) {
    lock.Unlock();
    RunTask(std::move(fn));
    return;
  }
  {
    MutexLock worker_lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(fn));
  }
  ++wake_version_;
  lock.Unlock();
  idle_cv_.NotifyAll();
}

std::function<void()> ThreadPool::FindTask(uint32_t id) {
  {
    Worker& own = *workers_[id];
    MutexLock lock(own.mu);
    if (!own.tasks.empty()) {
      auto task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  const uint32_t n = num_threads();
  for (uint32_t d = 1; d < n; ++d) {
    Worker& victim = *workers_[(id + d) % n];
    MutexLock lock(victim.mu);
    if (!victim.tasks.empty()) {
      auto task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      stolen_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::RunTask(std::function<void()> task) {
  task();
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last outstanding task: wake Wait(). The empty critical section orders
    // the notify after any concurrent Wait() has started waiting.
    { MutexLock lock(idle_mu_); }
    done_cv_.NotifyAll();
  }
}

void ThreadPool::WorkerLoop(uint32_t id) {
  tls_worker_id = static_cast<int32_t>(id);
  for (;;) {
    if (auto task = FindTask(id)) {
      RunTask(std::move(task));
      continue;
    }
    uint64_t seen;
    {
      MutexLock lock(idle_mu_);
      if (stop_) break;
      seen = wake_version_;
    }
    // A task may have arrived between the failed scan and recording the
    // version; re-scan before sleeping so the wakeup cannot be missed.
    if (auto task = FindTask(id)) {
      RunTask(std::move(task));
      continue;
    }
    // Guarded predicate re-checked in a while loop (not a wait lambda) so
    // the thread-safety analysis sees the accesses under the lock.
    MutexLock lock(idle_mu_);
    while (!stop_ && wake_version_ == seen) idle_cv_.Wait(lock);
    if (stop_) break;
  }
  // Shutdown drain. Once stop_ is observed, every enqueue that could race
  // with this exit has either completed (Submit pushed under idle_mu_
  // before stop_ was set) or diverted to run inline on its submitter, so
  // one pass until the deques are empty is conclusive: when FindTask comes
  // up empty here, no unexecuted task exists anywhere in the pool.
  while (auto task = FindTask(id)) RunTask(std::move(task));
}

void ThreadPool::Wait() {
  MutexLock lock(idle_mu_);
  while (pending_.load(std::memory_order_acquire) != 0) done_cv_.Wait(lock);
}

void ThreadPool::ParallelFor(
    uint64_t n, const std::function<void(uint32_t, uint64_t)>& fn) {
  if (n == 0) return;
  // One drainer task per worker; iterations are claimed from a shared
  // counter so uneven iteration costs balance across the pool.
  auto next = std::make_shared<std::atomic<uint64_t>>(0);
  const uint64_t drainers = std::min<uint64_t>(n, num_threads());
  for (uint64_t d = 0; d < drainers; ++d) {
    Submit([next, n, &fn] {
      const uint32_t worker = static_cast<uint32_t>(tls_worker_id);
      for (;;) {
        const uint64_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(worker, i);
      }
    });
  }
  Wait();
}

}  // namespace ptldb
