#include "common/rng.h"

#include <cassert>
#include <unordered_set>

namespace ptldb {

namespace {

// SplitMix64, used to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<uint32_t> Rng::SampleDistinct(uint32_t n, uint32_t k) {
  assert(k <= n);
  std::vector<uint32_t> out;
  out.reserve(k);
  if (k > n / 2) {
    // Dense case: partial Fisher-Yates over the full range.
    std::vector<uint32_t> all(n);
    for (uint32_t i = 0; i < n; ++i) all[i] = i;
    for (uint32_t i = 0; i < k; ++i) {
      const uint32_t j =
          i + static_cast<uint32_t>(NextBelow(static_cast<uint64_t>(n - i)));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
  } else {
    std::unordered_set<uint32_t> seen;
    while (out.size() < k) {
      const auto v = static_cast<uint32_t>(NextBelow(n));
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

}  // namespace ptldb
