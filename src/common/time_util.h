#ifndef PTLDB_COMMON_TIME_UTIL_H_
#define PTLDB_COMMON_TIME_UTIL_H_

#include <cstdint>
#include <limits>
#include <string>

namespace ptldb {

/// Timestamps are seconds since service-day midnight, matching GTFS
/// stop_times semantics. Values may exceed 24h (86400) for trips that run
/// past midnight.
using Timestamp = int32_t;

/// Sentinel for "no feasible trip" (earliest-arrival queries).
inline constexpr Timestamp kInfinityTime = std::numeric_limits<Timestamp>::max();
/// Sentinel for "no feasible trip" (latest-departure queries).
inline constexpr Timestamp kNegInfinityTime = std::numeric_limits<Timestamp>::min();
/// Generic "not a timestamp" marker used in serialized label tuples.
inline constexpr Timestamp kInvalidTime = -1;

/// Seconds per hour; the paper's kNN/OTM tables bucket label tuples by hour.
inline constexpr Timestamp kSecondsPerHour = 3600;

/// Hour bucket of a timestamp: FLOOR(t/3600) in the paper's SQL.
constexpr int32_t HourOf(Timestamp t) { return t / kSecondsPerHour; }

/// Formats a timestamp as "HH:MM:SS" (hours may exceed 24). Sentinels are
/// rendered as "--:--:--".
std::string FormatTime(Timestamp t);

/// Parses "HH:MM:SS" (GTFS-style; hours may exceed 24). Returns
/// kInvalidTime on malformed input.
Timestamp ParseGtfsTime(const std::string& text);

}  // namespace ptldb

#endif  // PTLDB_COMMON_TIME_UTIL_H_
