#ifndef PTLDB_COMMON_TIME_UTIL_H_
#define PTLDB_COMMON_TIME_UTIL_H_

#include <cstdint>
#include <string>

#include "common/time_types.h"

namespace ptldb {

/// Seconds per hour; the paper's kNN/OTM tables bucket label tuples by hour.
inline constexpr Duration kHourBucket = Duration::FromSeconds(3600);

/// Hour bucket of an event time: FLOOR(t/3600) in the paper's SQL.
constexpr int64_t HourOf(EventTime t) { return TimeBucket(t, kHourBucket); }

/// Formats an event time as "HH:MM:SS" (hours may exceed 24). Sentinels
/// and negative times are rendered as "--:--:--".
std::string FormatTime(EventTime t);

/// Parses "HH:MM:SS" (GTFS-style; hours may exceed 24). Returns
/// EventTime::Invalid() on malformed input.
EventTime ParseGtfsTime(const std::string& text);

}  // namespace ptldb

#endif  // PTLDB_COMMON_TIME_UTIL_H_
