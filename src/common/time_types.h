#ifndef PTLDB_COMMON_TIME_TYPES_H_
#define PTLDB_COMMON_TIME_TYPES_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

/// Typed time algebra (DESIGN.md §15).
///
/// Two widths, one conversion boundary:
///
///  * Compute tier: `EventTime` / `Duration`, int64-backed strong types.
///    Everything that *computes* with time — timetable model, generator
///    event clocks, TTL label tuples, merge kernels, query arguments,
///    oracle scans — uses these. int64 seconds cannot overflow on any
///    realistic horizon (2^63 s ≈ 292 billion years), which retires the
///    int32 overflow bug class fixed twice already (tables.cc hour-bucket
///    edges; generator emit_direction event clock).
///
///  * Stored tier: `StoredTime`, the 32-bit on-page / on-disk / codec
///    encoding (engine Value rows, varint label streams, serialized
///    timetables). Stored widths are a physical format, not an arithmetic
///    domain: bytes cross between the tiers only through the checked
///    boundary functions below, never through a bare static_cast.
///
/// Sentinels are *stored-width* values widened into the compute tier:
/// `EventTime::Infinity().raw_seconds() == kInfinityTime`. That keeps
/// `FromStoredTime` a pure widening, keeps every on-disk byte and CRC
/// golden identical, and preserves the saturation behavior of
/// shortest-duration folds. When multi-day horizons (ROADMAP item 4) need
/// event times beyond int32, the sentinels move to int64 extremes and
/// only this header and the boundary functions change.
///
/// `scripts/ptldb_analyzer.py` (check: time-width) enforces the split:
/// raw int arithmetic on time-typed values and unchecked narrowing casts
/// are findings everywhere outside this header.

namespace ptldb {

/// Stored (on-page / codec / serialized) time encoding: 32-bit seconds
/// since service-day midnight, matching GTFS stop_times semantics. Values
/// may exceed 24h (86400) for trips that run past midnight.
using StoredTime = int32_t;

/// Sentinel for "no feasible trip" (earliest-arrival queries).
inline constexpr StoredTime kInfinityTime =
    std::numeric_limits<StoredTime>::max();
/// Sentinel for "no feasible trip" (latest-departure queries).
inline constexpr StoredTime kNegInfinityTime =
    std::numeric_limits<StoredTime>::min();
/// Generic "not a timestamp" marker used in serialized label tuples.
inline constexpr StoredTime kInvalidTime = -1;

class Duration;

/// A point on the service-day clock, in whole seconds. Construction is
/// explicit (`EventTime::FromSeconds`, `FromStoredTime`); there is no
/// conversion to or from raw integers, and the only arithmetic is the
/// affine algebra: EventTime - EventTime = Duration, EventTime ± Duration
/// = EventTime. Trivially copyable (lives in VM programs, arena vectors
/// and the query-log ring).
class EventTime {
 public:
  constexpr EventTime() = default;

  static constexpr EventTime FromSeconds(int64_t seconds) {
    return EventTime(seconds);
  }
  /// "No feasible trip" for earliest-arrival style folds.
  static constexpr EventTime Infinity() { return EventTime(kInfinityTime); }
  /// "No feasible trip" for latest-departure style folds.
  static constexpr EventTime NegInfinity() {
    return EventTime(kNegInfinityTime);
  }
  /// "Not a timestamp".
  static constexpr EventTime Invalid() { return EventTime(kInvalidTime); }

  /// Escape hatch to the raw integer domain. Every use site is a
  /// time-width analyzer obligation: arithmetic on the result must stay
  /// 64-bit, and narrowing must go through ToStoredTime.
  constexpr int64_t raw_seconds() const { return seconds_; }

  friend constexpr bool operator==(EventTime, EventTime) = default;
  friend constexpr auto operator<=>(EventTime a, EventTime b) {
    return a.seconds_ <=> b.seconds_;
  }

  constexpr EventTime& operator+=(Duration d);
  constexpr EventTime& operator-=(Duration d);

 private:
  explicit constexpr EventTime(int64_t seconds) : seconds_(seconds) {}

  int64_t seconds_ = 0;
};

/// A signed span of seconds: headways, dwell and hop times, bucket
/// widths, shortest-duration results. Same construction discipline as
/// EventTime; closed under +, -, and integer scaling.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration FromSeconds(int64_t seconds) {
    return Duration(seconds);
  }
  /// Saturation value for shortest-duration folds; matches the stored
  /// sentinel so SD answers narrow losslessly.
  static constexpr Duration Infinity() { return Duration(kInfinityTime); }
  static constexpr Duration Zero() { return Duration(0); }

  constexpr int64_t raw_seconds() const { return seconds_; }

  friend constexpr bool operator==(Duration, Duration) = default;
  friend constexpr auto operator<=>(Duration a, Duration b) {
    return a.seconds_ <=> b.seconds_;
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.seconds_ + b.seconds_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.seconds_ - b.seconds_);
  }
  constexpr Duration operator-() const { return Duration(-seconds_); }
  friend constexpr Duration operator*(Duration d, int64_t k) {
    return Duration(d.seconds_ * k);
  }
  friend constexpr Duration operator*(int64_t k, Duration d) {
    return Duration(k * d.seconds_);
  }
  friend constexpr Duration operator/(Duration d, int64_t k) {
    return Duration(d.seconds_ / k);
  }
  constexpr Duration& operator+=(Duration d) {
    seconds_ += d.seconds_;
    return *this;
  }
  constexpr Duration& operator-=(Duration d) {
    seconds_ -= d.seconds_;
    return *this;
  }

 private:
  explicit constexpr Duration(int64_t seconds) : seconds_(seconds) {}

  int64_t seconds_ = 0;
};

constexpr Duration operator-(EventTime a, EventTime b) {
  return Duration::FromSeconds(a.raw_seconds() - b.raw_seconds());
}
constexpr EventTime operator+(EventTime t, Duration d) {
  return EventTime::FromSeconds(t.raw_seconds() + d.raw_seconds());
}
constexpr EventTime operator-(EventTime t, Duration d) {
  return EventTime::FromSeconds(t.raw_seconds() - d.raw_seconds());
}
constexpr EventTime& EventTime::operator+=(Duration d) {
  seconds_ += d.raw_seconds();
  return *this;
}
constexpr EventTime& EventTime::operator-=(Duration d) {
  seconds_ -= d.raw_seconds();
  return *this;
}

/// Widening a stored encoding into the compute tier is always exact.
constexpr EventTime FromStoredTime(StoredTime t) {
  return EventTime::FromSeconds(t);
}

namespace internal {
/// Reports the out-of-range value and aborts. Out-of-line so the header
/// stays diagnostic-free; a narrowing fault is an index/format invariant
/// violation, not a recoverable condition.
[[noreturn]] void StoredTimeNarrowingFault(int64_t seconds);
}  // namespace internal

/// Checked narrowing for *data* leaving the compute tier: label tuples
/// materialized into engine rows, codec inputs, serialized connections,
/// query answers rendered as SQL values. The stored format cannot
/// represent the value => the index would be silently corrupt; abort.
constexpr StoredTime ToStoredTime(EventTime t) {
  const int64_t s = t.raw_seconds();
  if (s < static_cast<int64_t>(kNegInfinityTime) ||
      s > static_cast<int64_t>(kInfinityTime)) {
    internal::StoredTimeNarrowingFault(s);
  }
  return static_cast<StoredTime>(s);
}

/// Saturating narrowing for *predicate bounds* entering the stored tier:
/// comparing stored int32 columns against a query argument that may lie
/// outside the stored range. Clamping to the stored extremes (which are
/// the infinity sentinels) preserves the comparison semantics: a bound
/// past +inf matches nothing an EA scan accepts, a bound past -inf
/// matches everything.
constexpr StoredTime SaturatingToStoredTime(EventTime t) {
  const int64_t s = t.raw_seconds();
  if (s > static_cast<int64_t>(kInfinityTime)) return kInfinityTime;
  if (s < static_cast<int64_t>(kNegInfinityTime)) return kNegInfinityTime;
  return static_cast<StoredTime>(s);
}

/// Checked narrowing for duration *data* (shortest-duration answers
/// rendered as stored values). Saturated folds produce at most
/// Duration::Infinity(), which is stored-representable by construction.
constexpr StoredTime ToStoredSeconds(Duration d) {
  const int64_t s = d.raw_seconds();
  if (s < static_cast<int64_t>(kNegInfinityTime) ||
      s > static_cast<int64_t>(kInfinityTime)) {
    internal::StoredTimeNarrowingFault(s);
  }
  return static_cast<StoredTime>(s);
}

/// Bucket index of `t` for bucket width `width`: FLOOR toward zero, the
/// paper's t/3600 SQL semantics (negative test times keep C++ truncating
/// division, exactly as the int32 code did). 64-bit because a compute-tier
/// time divided by a 1s bucket does not fit int32.
constexpr int64_t TimeBucket(EventTime t, Duration width) {
  return t.raw_seconds() / width.raw_seconds();
}

/// Bucket index of a stored column value. Stored inputs make the result
/// int32-representable for any positive width, so this is the data-side
/// (scan-side) form; no narrowing check is needed.
constexpr int32_t StoredBucketOf(StoredTime t, Duration width) {
  return static_cast<int32_t>(static_cast<int64_t>(t) / width.raw_seconds());
}

/// Bucket index of data-tier time known to be stored-representable (label
/// tuples being materialized into bucket tables). The int32 bucket domain
/// is what the hour columns store; a bucket outside it means the data
/// itself was out of the stored range, so fault like ToStoredTime.
constexpr int32_t CheckedBucketOf(EventTime t, Duration width) {
  const int64_t b = TimeBucket(t, width);
  if (b > static_cast<int64_t>(std::numeric_limits<int32_t>::max()) ||
      b < static_cast<int64_t>(std::numeric_limits<int32_t>::min())) {
    internal::StoredTimeNarrowingFault(b);
  }
  return static_cast<int32_t>(b);
}

/// Bucket index of a query argument, clamped into int32 (and typically
/// further min'ed against a table's max_bucket by the caller). Arguments
/// beyond the stored horizon saturate, mirroring SaturatingToStoredTime.
constexpr int32_t SaturatingBucketOf(EventTime t, Duration width) {
  const int64_t b = TimeBucket(t, width);
  if (b > static_cast<int64_t>(std::numeric_limits<int32_t>::max())) {
    return std::numeric_limits<int32_t>::max();
  }
  if (b < static_cast<int64_t>(std::numeric_limits<int32_t>::min())) {
    return std::numeric_limits<int32_t>::min();
  }
  return static_cast<int32_t>(b);
}

/// Start of bucket `bucket` for width `width`, in the compute tier. The
/// 64-bit product is exact even for the top bucket edge that used to
/// overflow int32 (the PR 7 tables.cc bug).
constexpr EventTime BucketStart(int64_t bucket, Duration width) {
  return EventTime::FromSeconds(bucket * width.raw_seconds());
}

}  // namespace ptldb

template <>
struct std::hash<ptldb::EventTime> {
  size_t operator()(ptldb::EventTime t) const noexcept {
    return std::hash<int64_t>{}(t.raw_seconds());
  }
};

#endif  // PTLDB_COMMON_TIME_TYPES_H_
