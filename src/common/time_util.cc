#include "common/time_util.h"

#include <cstdio>
#include <cstdlib>

namespace ptldb {

std::string FormatTime(EventTime t) {
  if (t == EventTime::Infinity() || t == EventTime::NegInfinity() ||
      t < EventTime::FromSeconds(0)) {
    return "--:--:--";
  }
  const int64_t s = t.raw_seconds();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld",
                static_cast<long long>(s / 3600),
                static_cast<long long>((s / 60) % 60),
                static_cast<long long>(s % 60));
  return buf;
}

EventTime ParseGtfsTime(const std::string& text) {
  int h = 0, m = 0, s = 0;
  if (std::sscanf(text.c_str(), "%d:%d:%d", &h, &m, &s) != 3) {
    return EventTime::Invalid();
  }
  if (h < 0 || m < 0 || m > 59 || s < 0 || s > 59) {
    return EventTime::Invalid();
  }
  return EventTime::FromSeconds(static_cast<int64_t>(h) * 3600 + m * 60 + s);
}

}  // namespace ptldb
