#include "common/time_util.h"

#include <cstdio>
#include <cstdlib>

namespace ptldb {

std::string FormatTime(Timestamp t) {
  if (t == kInfinityTime || t == kNegInfinityTime || t < 0) {
    return "--:--:--";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", t / 3600, (t / 60) % 60,
                t % 60);
  return buf;
}

Timestamp ParseGtfsTime(const std::string& text) {
  int h = 0, m = 0, s = 0;
  if (std::sscanf(text.c_str(), "%d:%d:%d", &h, &m, &s) != 3) {
    return kInvalidTime;
  }
  if (h < 0 || m < 0 || m > 59 || s < 0 || s > 59) return kInvalidTime;
  return h * 3600 + m * 60 + s;
}

}  // namespace ptldb
