#ifndef PTLDB_COMMON_THREAD_ANNOTATIONS_H_
#define PTLDB_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <mutex>
#include <condition_variable>

/// Clang Thread Safety Analysis annotations (see DESIGN.md §9,
/// "Concurrency contracts & static analysis").
///
/// Every locking discipline in PTLDB — which mutex guards which field,
/// which methods require a latch already held — is written down with
/// these macros so that `clang -Wthread-safety -Werror=thread-safety`
/// rejects violations at compile time. Under non-Clang compilers (the
/// default GCC build) they expand to nothing and cost nothing.
///
/// Lock hierarchy (acquire in this order, document exceptions):
///   device mutex < buffer-pool shard latch < (no nesting below)
/// No PTLDB mutex may be held while calling back into user code.
///
/// Use the `Mutex` / `MutexLock` / `CondVar` wrappers below rather than
/// naked `std::mutex` / `std::lock_guard`: the wrappers carry the
/// capability annotations the analysis needs, and scripts/ptldb_lint.py
/// rejects naked standard-library mutexes outside this header.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PTLDB_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef PTLDB_THREAD_ANNOTATION_
#define PTLDB_THREAD_ANNOTATION_(x)  // Expands to nothing off-Clang.
#endif

/// A type that acts as a lock (applied to the Mutex wrapper class).
#define PTLDB_CAPABILITY(x) PTLDB_THREAD_ANNOTATION_(capability(x))

/// RAII type that acquires on construction / releases on destruction.
#define PTLDB_SCOPED_CAPABILITY PTLDB_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define PTLDB_GUARDED_BY(x) PTLDB_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define PTLDB_PT_GUARDED_BY(x) PTLDB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that must be called with the given mutex(es) already held.
#define PTLDB_REQUIRES(...) \
  PTLDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that must NOT be called with the given mutex(es) held
/// (it acquires them itself; calling locked would deadlock).
#define PTLDB_EXCLUDES(...) PTLDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function that acquires / releases the given capability.
#define PTLDB_ACQUIRE(...) \
  PTLDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define PTLDB_RELEASE(...) \
  PTLDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define PTLDB_TRY_ACQUIRE(...) \
  PTLDB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Documents lock-acquisition order between two mutexes.
#define PTLDB_ACQUIRED_BEFORE(...) \
  PTLDB_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define PTLDB_ACQUIRED_AFTER(...) \
  PTLDB_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returning a reference to the given capability.
#define PTLDB_RETURN_CAPABILITY(x) PTLDB_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's locking is correct but beyond the
/// analysis (e.g. locks chosen through runtime indirection). Every use
/// must carry a comment saying why.
#define PTLDB_NO_THREAD_SAFETY_ANALYSIS \
  PTLDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace ptldb {

class CondVar;

/// Annotation-friendly wrapper over std::mutex. Identical cost (the
/// wrapper is exactly one std::mutex); the only addition is the
/// capability attribute that lets Clang check GUARDED_BY contracts.
class PTLDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PTLDB_ACQUIRE() { mu_.lock(); }
  void Unlock() PTLDB_RELEASE() { mu_.unlock(); }
  bool TryLock() PTLDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock on a Mutex, the project's lock_guard/unique_lock. Supports
/// mid-scope Unlock()/Lock() pairs (the buffer pool's yield-off-latch
/// path); the destructor releases only if still held.
class PTLDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PTLDB_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() PTLDB_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. to yield before retrying). Must currently hold.
  void Unlock() PTLDB_RELEASE() { lock_.unlock(); }
  /// Re-acquires after an early Unlock().
  void Lock() PTLDB_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to the Mutex wrapper. Wait() atomically
/// releases and re-acquires the lock, so from the caller's (and the
/// analysis') point of view the capability is held across the call;
/// guarded predicate fields must be re-checked in a `while` loop around
/// Wait() rather than inside a lambda (the analysis does not propagate
/// lock state into lambda bodies).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  /// Bounded waits for request-path code: scripts/ptldb_lint.py forbids
  /// the unbounded Wait() in src/server/ and the executor — a worker
  /// parked on an unbounded wait cannot observe a deadline or a shutdown
  /// that the notifying side lost a race on. Returns false on timeout.
  bool WaitFor(MutexLock& lock, std::chrono::nanoseconds timeout) {
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::no_timeout;
  }
  bool WaitUntil(MutexLock& lock,
                 std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.lock_, deadline) == std::cv_status::no_timeout;
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ptldb

#endif  // PTLDB_COMMON_THREAD_ANNOTATIONS_H_
