#!/usr/bin/env python3
"""Validates a benchmark run record written via --json (see
bench/bench_common.h, WriteBenchJson).

Checks the schema — required top-level fields, phase shape, metrics
snapshot shape — and, for bench_micro records, that the engine counters the
observability layer is supposed to track actually moved during the run: a
tracked counter stuck at zero means an instrumentation point was lost.

For bench_server records (the open-loop serving sweep) it also asserts the
overload contract of DESIGN.md §10 on the properties that are robust across
machines and runs:
  - every serve_* phase accounts for every submitted request exactly once
    (ok + shed + deadline + errors == items);
  - at the highest offered multiple, interactive availability stays >= 99%
    while the expensive class sheds (shed-before-collapse);
  - the server's admission/rejection counters actually moved.

Usage: check_bench_json.py RECORD.json [RECORD.json ...]
Exits non-zero with a message on the first invalid record.

Stdlib only; safe to run in CI without extra dependencies.
"""
import json
import re
import sys

# Counters that a bench_micro --json run (v2v + kNN + one-to-many queries
# on a SATA-SSD device profile) must have incremented. Keep in sync with
# bench_micro.cpp's RunJsonMode phases.
MICRO_NONZERO_COUNTERS = [
    "bufferpool.hits",
    "bufferpool.misses",
    "device.reads",
    "device.read_ns",
    "exec.tuples_scanned",
    "exec.index_seeks",
    "ttl.hubs_merged",
    "ttl.label_comparisons",
    "exec.vm_steps",
    "query.v2v_ea.count",
    "query.ea_knn.count",
    "query.ea_otm.count",
]


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def check_record(path):
    try:
        with open(path) as f:
            record = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot parse: {e}")

    for field, kind in [
        ("bench", str),
        ("git", str),
        ("scale", (int, float)),
        ("seed", int),
        ("phases", list),
        ("metrics", dict),
    ]:
        if field not in record:
            fail(path, f"missing field {field!r}")
        if not isinstance(record[field], kind):
            fail(path, f"field {field!r} has wrong type")

    if not record["phases"]:
        fail(path, "no phases recorded")
    for phase in record["phases"]:
        for field, kind in [
            ("name", str),
            ("seconds", (int, float)),
            ("items", int),
            ("ms_per_item", (int, float)),
        ]:
            if field not in phase or not isinstance(phase[field], kind):
                fail(path, f"bad phase entry: {phase!r}")
        if phase["seconds"] < 0:
            fail(path, f"negative duration in phase {phase['name']!r}")

    metrics = record["metrics"]
    for section in ("counters", "gauges", "histograms"):
        if section not in metrics or not isinstance(metrics[section], dict):
            fail(path, f"metrics snapshot missing {section!r}")
    for name, summary in metrics["histograms"].items():
        for field in ("count", "sum", "min", "max", "p50", "p95", "p99"):
            if field not in summary:
                fail(path, f"histogram {name!r} missing {field!r}")

    if record["bench"] == "bench_server":
        check_server_overload(path, record)

    if record["bench"] == "bench_micro":
        counters = metrics["counters"]
        for name in MICRO_NONZERO_COUNTERS:
            if counters.get(name, 0) == 0:
                fail(path, f"tracked counter {name!r} is zero or missing")
        latency = metrics["histograms"].get("query.v2v_ea.latency_ns")
        if latency is None or latency["count"] == 0:
            fail(path, "query.v2v_ea.latency_ns histogram is empty")
        check_concurrency_scaling(path, record)
        check_compressed_labels(path, record)
        check_observability_overhead(path, record)
        check_vm_speedup(path, record)

    print(f"{path}: ok ({len(record['phases'])} phases, "
          f"{len(metrics['counters'])} counters)")


SERVE_PHASE = re.compile(r"^serve_w(\d+)_x([0-9.]+)_(int|exp)$")
SERVE_LOAD_FIELDS = [
    ("offered_qps", (int, float)),
    ("workers", int),
    ("ok", int),
    ("shed", int),
    ("deadline", int),
    ("errors", int),
    ("p50_ms", (int, float)),
    ("p95_ms", (int, float)),
    ("p99_ms", (int, float)),
]


def check_server_overload(path, record):
    """Validates the open-loop serving sweep (bench_server) against the
    DESIGN.md §10 overload contract.

    Latency numbers are machine-dependent, so the assertions stick to
    structural properties: exactly-once response accounting, and — at the
    highest offered multiple of each worker count — interactive (v2v)
    availability >= 99% while the expensive (kNN/OTM) class visibly sheds
    with explicit kOverloaded rejections. A run where overload silently
    collapses the interactive class, or where rejections vanish into thin
    air, fails here even though its schema is well-formed.
    """
    points = {}  # (workers, multiple) -> {"int": phase, "exp": phase}
    for phase in record["phases"]:
        m = SERVE_PHASE.match(phase["name"])
        if m is None:
            continue
        for field, kind in SERVE_LOAD_FIELDS:
            if field not in phase or not isinstance(phase[field], kind):
                fail(path, f"serve phase {phase['name']!r} missing or "
                           f"mistyped field {field!r}")
        answered = (phase["ok"] + phase["shed"] + phase["deadline"]
                    + phase["errors"])
        if answered != phase["items"]:
            fail(path, f"{phase['name']}: {answered} responses for "
                       f"{phase['items']} submissions — the exactly-once "
                       "callback contract is broken")
        key = (int(m.group(1)), float(m.group(2)))
        points.setdefault(key, {})[m.group(3)] = phase
    if not points:
        fail(path, "bench_server record has no serve_* phases")

    workers_seen = sorted({w for w, _ in points})
    for workers in workers_seen:
        multiples = sorted(m for w, m in points if w == workers)
        peak = points[(workers, multiples[-1])]
        if "int" not in peak or "exp" not in peak:
            fail(path, f"w{workers}: peak load point missing a class phase")
        pi, pe = peak["int"], peak["exp"]
        if pi["items"] == 0 or pe["items"] == 0:
            fail(path, f"w{workers}: empty peak phase")
        availability = pi["ok"] / pi["items"]
        if availability < 0.99:
            fail(path,
                 f"w{workers} x{multiples[-1]:g}: interactive availability "
                 f"{availability:.3f} < 0.99 — overload is collapsing the "
                 "interactive class instead of shedding the expensive one")
        if multiples[-1] >= 2.0 and pe["shed"] == 0:
            fail(path,
                 f"w{workers} x{multiples[-1]:g}: expensive class shed "
                 "nothing at sustained overload — admission control is "
                 "not engaging")
        print(f"{path}: w{workers} x{multiples[-1]:g} interactive "
              f"availability {availability:.3f}, expensive shed "
              f"{pe['shed']}/{pe['items']}")

    counters = record["metrics"]["counters"]
    for name in ("server.admitted", "server.completed"):
        if counters.get(name, 0) == 0:
            fail(path, f"serving counter {name!r} is zero or missing")
    if counters.get("server.rejected.shed", 0) == 0:
        fail(path, "server.rejected.shed is zero — the sweep never "
                   "exercised expensive-class rejection")
    check_server_querylog(path, record, points)


def check_server_querylog(path, record, points):
    """The slow-log / trace-retention contract over the whole sweep
    (DESIGN.md §11): every request that was shed, expired or errored left
    exactly one structured record in the query log and retained a trace.

    The serve-phase response counts are the ground truth (each submission
    is answered exactly once, checked above); the query-log outcome
    counters must match them exactly — a deficit means a rejection path
    skipped logging, a surplus means a request was double-recorded. The
    same equality against traces.retained.* is the 100%-retention gate,
    and against server.rejected.cause.* it pins every shed record to an
    attributed admission cause.
    """
    counters = record["metrics"]["counters"]
    outcome = lambda o: counters.get(f"querylog.outcome.{o}", 0)
    retained = lambda r: counters.get(f"traces.retained.{r}", 0)
    total = {"shed": 0, "deadline": 0, "errors": 0}
    for classes in points.values():
        for phase in classes.values():
            for field in total:
                total[field] += phase[field]
    if outcome("shed") != total["shed"]:
        fail(path, f"querylog.outcome.shed {outcome('shed')} != "
                   f"{total['shed']} shed responses — slow-log records "
                   "and shed responses must match exactly once")
    if outcome("deadline") != total["deadline"]:
        fail(path, f"querylog.outcome.deadline {outcome('deadline')} != "
                   f"{total['deadline']} deadline responses — a deadline "
                   "path skipped or double-wrote the query log")
    if outcome("error") != total["errors"]:
        fail(path, f"querylog.outcome.error {outcome('error')} != "
                   f"{total['errors']} error responses")
    for reason in ("shed", "deadline", "error"):
        o = outcome(reason)
        r = retained(reason)
        if o != r:
            fail(path, f"traces.retained.{reason} {r} != "
                       f"querylog.outcome.{reason} {o} — tail sampling "
                       "must retain a trace for 100% of them")
    causes = ("stopping", "shed", "queue_full", "headroom")
    cause_sum = sum(counters.get(f"server.rejected.cause.{c}", 0)
                    for c in causes)
    if cause_sum != outcome("shed"):
        fail(path, f"shed-cause breakdown sums to {cause_sum} but "
                   f"querylog.outcome.shed is {outcome('shed')} — a "
                   "rejection lost its cause attribution")
    hists = record["metrics"]["histograms"]
    for cls in ("interactive", "expensive"):
        h = hists.get(f"server.queue_wait.{cls}_ns")
        if h is None or h["count"] == 0:
            fail(path, f"server.queue_wait.{cls}_ns histogram empty — "
                       "queue-wait attribution is not being recorded")
    print(f"{path}: querylog exactly-once ok (shed {total['shed']}, "
          f"deadline {total['deadline']}, errors {total['errors']}; "
          f"all traced, causes {cause_sum})")


def check_concurrency_scaling(path, record):
    """When a --concurrency N run recorded the paired warm multi-threaded
    phases (mt_v2v_ea_c1 and mt_v2v_ea_cN), require the N-thread batch to
    actually outperform the single-thread batch on multi-core machines.

    The threshold is deliberately modest (1.15x, not Nx) so CI stays stable
    on shared 2-core runners; the failure mode it guards against — every
    fetch serializing on one pool-wide latch, giving cN ~= c1 — misses it
    by a wide margin. On a single-core machine real speedup is impossible,
    so only require that contention does not collapse throughput (>= 0.5x).
    """
    mt = {p["name"]: p for p in record["phases"]
          if p["name"].startswith("mt_v2v_ea_c")}
    if not mt:
        return  # Run without --concurrency; nothing to compare.
    base = mt.get("mt_v2v_ea_c1")
    scaled = [p for name, p in mt.items() if name != "mt_v2v_ea_c1"]
    if base is None or not scaled:
        fail(path, "mt_v2v_ea phases present but c1/cN pair incomplete")
    for phase in scaled:
        if base["seconds"] <= 0 or phase["seconds"] <= 0:
            fail(path, f"non-positive duration in {phase['name']!r}")
        qps_base = base["items"] / base["seconds"]
        qps = phase["items"] / phase["seconds"]
        cores = record["metrics"]["gauges"].get("bench.hardware_threads", 0)
        required = 1.15 if cores >= 2 else 0.5
        if qps < qps_base * required:
            fail(path,
                 f"{phase['name']}: {qps:.0f} qps vs c1 {qps_base:.0f} qps "
                 f"(< {required}x on a {cores}-thread machine) — "
                 "concurrent fetches are serializing")
        print(f"{path}: {phase['name']} {qps:.0f} qps vs c1 "
              f"{qps_base:.0f} qps on {cores} hardware threads")


def check_compressed_labels(path, record):
    """Gates the compressed in-memory label tier (DESIGN.md §12) on a
    bench_micro record:
      - the tier was built and actually served queries (resident bytes,
        label count and decode counters all nonzero);
      - the delta+varint buckets compress to at most half of the raw
        12-byte-per-tuple arrays;
      - the paired warm v2v phases show the compressed path no slower
        than the raw heap path (the in-memory merge join skips the
        executor and buffer pool entirely, so this holds with a wide
        margin on any machine; 1.05x absorbs timer jitter on the short
        CI batches).
    """
    gauges = record["metrics"]["gauges"]
    counters = record["metrics"]["counters"]
    resident = gauges.get("ttl.labels.bytes_resident", 0)
    raw = gauges.get("ttl.labels.raw_bytes", 0)
    count = gauges.get("ttl.labels.count", 0)
    if resident <= 0 or raw <= 0 or count <= 0:
        fail(path, "compressed label tier gauges missing or zero "
                   f"(resident={resident}, raw={raw}, count={count})")
    if counters.get("ttl.labels.decodes", 0) == 0:
        fail(path, "ttl.labels.decodes is zero — the compressed tier "
                   "never served a query")
    if resident * 2 > raw:
        fail(path,
             f"compressed labels use {resident} bytes vs {raw} raw "
             f"({resident / raw:.2f}x) — the 0.5x compression gate failed")
    phases = {p["name"]: p for p in record["phases"]}
    raw_phase = phases.get("v2v_ea_warm_raw_paired")
    comp_phase = phases.get("v2v_ea_warm_compressed")
    if raw_phase is None or comp_phase is None:
        fail(path, "paired warm v2v phases (raw/compressed) missing")
    if comp_phase["ms_per_item"] > raw_phase["ms_per_item"] * 1.05:
        fail(path,
             f"compressed warm v2v {comp_phase['ms_per_item']:.4f} ms vs "
             f"raw {raw_phase['ms_per_item']:.4f} ms — the compressed "
             "tier is slower than the heap path")
    print(f"{path}: labels {resident}/{raw} bytes "
          f"({resident / raw:.2f}x raw, {resident / count:.2f} B/label), "
          f"warm v2v compressed {comp_phase['ms_per_item']:.4f} ms vs raw "
          f"{raw_phase['ms_per_item']:.4f} ms")


def check_observability_overhead(path, record):
    """Gates the cost of always-on observability on a bench_micro record:
    the paired warm v2v phases with the query log + tail sampler disabled
    (v2v_ea_warm_obs_off) and enabled (v2v_ea_warm_obs_on) run identical
    schedules on one database, and the enabled p50 must stay within 5% of
    the disabled p50. A small absolute guard (2 microseconds) absorbs
    clock quantization on sub-50us warm queries, where a single timer
    tick would otherwise exceed 5% on its own; a real regression — say a
    lock acquisition or an allocation added to the per-query path —
    shows up far above both bounds.

    Also requires that the enabled phase actually recorded: a run where
    querylog.records stayed zero proves nothing about overhead.
    """
    phases = {p["name"]: p for p in record["phases"]}
    off = phases.get("v2v_ea_warm_obs_off")
    on = phases.get("v2v_ea_warm_obs_on")
    if off is None or on is None:
        fail(path, "paired observability phases (obs_off/obs_on) missing")
    for phase in (off, on):
        if "p50_ms" not in phase:
            fail(path, f"{phase['name']}: missing p50_ms")
        if phase["items"] == 0 or phase["p50_ms"] <= 0:
            fail(path, f"{phase['name']}: empty or zero-latency phase")
    budget = off["p50_ms"] * 1.05 + 0.002
    if on["p50_ms"] > budget:
        fail(path,
             f"observability overhead: warm v2v p50 {on['p50_ms']:.4f} ms "
             f"enabled vs {off['p50_ms']:.4f} ms disabled — exceeds the "
             "5% (+2us guard) budget")
    counters = record["metrics"]["counters"]
    if counters.get("querylog.records", 0) == 0:
        fail(path, "querylog.records is zero — the enabled phase never "
                   "recorded, so the overhead comparison is vacuous")
    print(f"{path}: observability overhead ok — warm v2v p50 "
          f"{on['p50_ms']:.4f} ms on vs {off['p50_ms']:.4f} ms off")


def check_vm_speedup(path, record):
    """Gates the compiled register VM (DESIGN.md §13) on a bench_micro
    record. The paired warm phases run identical alternating schedules on
    one database with only the executor toggled, so the comparison is
    apples-to-apples on any machine:
      - the compiled-VM p50 beats the interpreter p50 by at least 1.2x on
        both query shapes (the observed margin is far larger — the gate
        only needs to catch the VM silently falling back to the volcano
        path, which would make the ratio ~1.0);
      - the bench's allocation probe proves the arena contract: across
        the measured warm VM batches, v2v made zero heap allocations and
        kNN at most 3 per query (the materialized result vector).
    """
    phases = {p["name"]: p for p in record["phases"]}
    for interp_name, vm_name in (("v2v_ea_warm_interp", "v2v_ea_warm_vm"),
                                 ("ea_knn_warm_interp", "ea_knn_warm_vm")):
        interp = phases.get(interp_name)
        vm = phases.get(vm_name)
        if interp is None or vm is None:
            fail(path, f"paired executor phases ({interp_name}/{vm_name}) "
                       "missing")
        for phase in (interp, vm):
            if "p50_ms" not in phase:
                fail(path, f"{phase['name']}: missing p50_ms")
            if phase["items"] == 0 or phase["p50_ms"] <= 0:
                fail(path, f"{phase['name']}: empty or zero-latency phase")
        if vm["p50_ms"] * 1.2 > interp["p50_ms"]:
            fail(path,
                 f"{vm_name}: p50 {vm['p50_ms']:.4f} ms vs interpreter "
                 f"{interp['p50_ms']:.4f} ms — the compiled VM must beat "
                 "the interpreter by at least 1.2x on the warm path")
        print(f"{path}: {vm_name} p50 {vm['p50_ms']:.4f} ms vs interpreter "
              f"{interp['p50_ms']:.4f} ms "
              f"({interp['p50_ms'] / vm['p50_ms']:.1f}x)")

    gauges = record["metrics"]["gauges"]
    queries = gauges.get("bench.vm_warm_queries", 0)
    if queries <= 0:
        fail(path, "bench.vm_warm_queries missing — allocation probe absent")
    v2v_allocs = gauges.get("bench.vm_v2v_warm_allocs", -1)
    knn_allocs = gauges.get("bench.vm_knn_warm_allocs", -1)
    if v2v_allocs != 0:
        fail(path, f"warm compiled v2v made {v2v_allocs} heap allocations "
                   f"over {queries} queries — the arena contract requires "
                   "zero")
    if knn_allocs < 0 or knn_allocs > 3 * queries:
        fail(path, f"warm compiled kNN made {knn_allocs} heap allocations "
                   f"over {queries} queries — more than the 3/query budget "
                   "for the materialized result")
    print(f"{path}: warm VM allocations ok — v2v {v2v_allocs}, "
          f"kNN {knn_allocs} over {queries} queries each")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        check_record(path)


if __name__ == "__main__":
    main()
