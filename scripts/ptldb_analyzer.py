#!/usr/bin/env python3
"""PTLDB flow-aware static analyzer (DESIGN.md §15).

Where scripts/ptldb_lint.py pattern-matches single lines, this analyzer
builds a small intermediate representation of every translation unit —
functions with brace-matched bodies, loops, lock-acquisition scopes, a
cross-file call graph — and runs four project-specific checks that need
that structure:

  time-width            Raw 32-bit arithmetic or narrowing on time values.
                        The compute tier is int64 (`EventTime`/`Duration`,
                        common/time_types.h); the stored tier is int32.
                        Bytes cross between them only through the checked
                        boundary functions (ToStoredTime & friends), never
                        through a bare static_cast, and a time value must
                        never accumulate in a 32-bit variable (the int32
                        generator event clock and the hour-bucket edge
                        overflow were both exactly that bug).

  checkpoint            Every outermost loop in the query executor, the
                        compiled-VM scan kernels and the label-merge
                        kernels must reach a QueryContext deadline
                        checkpoint (CheckQueryCheckpoint), directly or
                        through a function it calls — otherwise a served
                        query can run past its deadline unbounded. Loops
                        whose trip count is structurally bounded carry an
                        explicit `// analyzer: bounded(<why>)` annotation.

  guard-escape          A `const Page*` obtained from a PageGuard must not
                        outlive the guard: returning it, storing it into a
                        member, or pushing it into a container recreates
                        the use-after-evict bug the guards eliminated.

  lock-order            The lock hierarchy is sets_mu_ (rank 0) -> buffer
                        pool shard latch (rank 1) -> storage device mu_
                        (rank 2). Acquisitions must descend; taking a
                        lower- or equal-ranked lock while a higher rank is
                        held — directly or through any transitive callee —
                        is a deadlock waiting for the right interleaving.

Backends: when the `clang.cindex` libclang bindings are importable (and a
libclang shared object can be loaded), translation units from the compile
database are parsed with the real Clang frontend and the IR is lifted
from cursor extents; otherwise a self-contained microparser (comment and
string aware tokenizer + brace matching) builds the same IR. The checks
are backend-independent: both produce FunctionInfo records.

Usage:
  ptldb_analyzer.py [-p build/compile_commands.json] [--check NAME ...]
                    [--list-checks] PATH [PATH ...]

Suppression: `// NOLINT` or `// NOLINT(<check>)` on the offending line.
Exit codes match ptldb_lint.py: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

CXX_EXTENSIONS = {".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx"}
SKIP_DIR_PREFIXES = ("build", "bench_cache", ".git", "results")

# ---------------------------------------------------------------------------
# Check configuration
# ---------------------------------------------------------------------------

# Files allowed to break specific checks (repo-relative path suffixes).
ALLOWLIST = {
    # The boundary functions themselves perform the checked narrowing.
    "time-width": [
        "src/common/time_types.h",
        "src/common/time_types.cc",
    ],
    # The pool constructs guards from raw frames under the shard latch.
    "guard-escape": ["src/engine/buffer_pool.h"],
}

# Paths whose loops serve queries and therefore must reach a deadline
# checkpoint (the executor, the VM fused scans, the merge kernels).
CHECKPOINT_PATHS = [
    "src/engine/exec.cc",
    "src/engine/exec.h",
    "src/engine/vm.h",
    "src/ptldb/compiled.cc",
    "src/ptldb/label_merge.h",
]

# Functions that ARE a checkpoint (their call satisfies the requirement).
CHECKPOINT_FUNCTIONS = {"CheckQueryCheckpoint"}

# Lock ranks, matched against the MutexLock argument expression. First
# match wins; mutexes matching no pattern are leaves outside the ranked
# hierarchy (the query-log ring shards, server breaker/controller/budget
# mutexes, metrics, traces) and are not analyzed for ordering.
LOCK_RANKS = [
    (re.compile(r"\bsets_mu_\b"), 0, "sets_mu_"),
    (re.compile(r"\bshard(\.|->)mu\b"), 1, "shard latch"),
    (re.compile(r"\bdevice_mu_\b"), 2, "device mu_"),
]
# `mu_` is rank 2 only inside the storage device's own files; everywhere
# else a bare mu_ is a leaf.
DEVICE_FILES = ("src/engine/device.h", "src/engine/device.cc")
DEVICE_MU = (re.compile(r"\bmu_\b"), 2, "device mu_")

# Bounded-loop annotation: written on the loop line or the line above.
BOUNDED_RE = re.compile(r"analyzer:\s*bounded\s*\(")

# 32-bit declared types the time-width check narrows on. int64_t/long are
# the compute width and always fine.
NARROW_TYPES = {"int", "int32_t", "uint32_t", "int16_t", "uint16_t",
                "short", "StoredTime"}

# Identifier components that mark a variable as time-valued for the
# accumulator heuristic ("clock", "dep_time", "t", "arr"...).
TIME_NAME_COMPONENTS = {
    "t", "td", "ta", "dep", "arr", "time", "times", "clock", "depart",
    "departure", "arrive", "arrival", "timestamp", "deadline", "tstart",
    "tend",
}

CHECK_NAMES = ["time-width", "checkpoint", "guard-escape", "lock-order"]

CHECK_DOC = """\
PTLDB flow-aware analyzer: structural checks ptldb_lint's line patterns
cannot express (suppress one line with `// NOLINT` / `// NOLINT(<check>)`):

  time-width       static_cast of raw_seconds()/time values into 32-bit
                   integers (use the checked boundary functions in
                   common/time_types.h), 32-bit variables initialized from
                   compute-tier seconds, and 32-bit time-named accumulators
                   (the int32 event-clock overflow bug class).

  checkpoint       an outermost loop in the executor / VM scans / merge
                   kernels that can never reach CheckQueryCheckpoint()
                   and does not carry an `// analyzer: bounded(<why>)`
                   annotation.

  guard-escape     a `const Page*` taken out of a PageGuard that outlives
                   the guard's frame: returned, stored into a member, or
                   pushed into a container.

  lock-order       acquiring a lower- or equal-ranked lock while holding a
                   higher one, directly or through transitive callees
                   (ranks: sets_mu_=0, shard latch=1, device mu_=2).
"""


@dataclass
class Finding:
    path: str
    line: int
    check: str
    message: str


# ---------------------------------------------------------------------------
# Tokenizer (microparse backend)
# ---------------------------------------------------------------------------

@dataclass
class Token:
    kind: str  # 'id', 'num', 'str', 'punct'
    text: str
    line: int


TOKEN_RE = re.compile(
    r"""
      (?P<id>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<num>\.?[0-9][0-9a-fA-FxX'.uUlL+-]*)
    | (?P<punct><<=|>>=|\+=|-=|\*=|/=|%=|&=|\|=|\^=|->\*?|\+\+|--|::|<<|>>|<=|>=|==|!=|&&|\|\||[+\-*/%^&|~!<>=?:;,.(){}\[\]])
    """,
    re.VERBOSE,
)


def strip_comments_and_strings(text: str):
    """Returns (clean_text, nolint) where clean_text has comments and
    string/char literals blanked (newlines kept, so line numbers survive)
    and nolint maps line -> set of suppressed checks ({'*'} = all)."""
    out = []
    nolint: dict[int, set] = {}
    i = 0
    line = 1
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            comment = text[i:j]
            _record_nolint(comment, line, nolint)
            if BOUNDED_RE.search(comment):
                nolint.setdefault(line, set()).add("bounded")
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            _record_nolint(chunk, line, nolint)
            out.append(re.sub(r"[^\n]", " ", chunk))
            line += chunk.count("\n")
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            chunk = text[i:j]
            out.append(c + " " * max(0, j - i - 2) + (c if j - i >= 2 else ""))
            line += chunk.count("\n")
            i = j
        else:
            if c == "\n":
                line += 1
            out.append(c)
            i += 1
    return "".join(out), nolint


NOLINT_RE = re.compile(r"NOLINT(?:\(([^)]*)\))?")


def _record_nolint(comment: str, line: int, nolint: dict):
    m = NOLINT_RE.search(comment)
    if not m:
        return
    if m.group(1):
        for name in m.group(1).split(","):
            nolint.setdefault(line, set()).add(name.strip())
    else:
        nolint.setdefault(line, set()).add("*")


def tokenize(clean: str) -> list[Token]:
    tokens = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(clean):
        line += clean.count("\n", pos, m.start())
        pos = m.start()
        kind = m.lastgroup
        tokens.append(Token(kind, m.group(), line))
    return tokens


# ---------------------------------------------------------------------------
# IR: functions, loops, lock scopes
# ---------------------------------------------------------------------------

@dataclass
class Loop:
    keyword: str
    line: int
    body: tuple  # (start, end) token range: loop header AND body — a
                 # checkpoint-reaching call in the condition (e.g.
                 # `while (auto row = child_->Next())`) counts.
    depth: int   # 0 = outermost within its function


@dataclass
class LockScope:
    rank: int
    label: str
    line: int
    start: int  # token index of acquisition
    end: int    # token index where the scope (or explicit Unlock) ends


@dataclass
class FunctionInfo:
    name: str
    path: str
    line: int
    tokens: list  # body tokens (Token)
    loops: list = field(default_factory=list)
    locks: list = field(default_factory=list)
    calls: set = field(default_factory=set)


CONTROL_KEYWORDS = {"if", "for", "while", "switch", "return", "do", "else",
                    "sizeof", "catch", "new", "delete", "case", "default",
                    "alignof", "decltype", "static_assert", "noexcept",
                    "co_return", "co_await", "co_yield", "throw"}


def match_forward(tokens, i, open_t, close_t):
    """Index just past the token matching tokens[i] (an open_t)."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def extract_functions(path: str, tokens: list) -> list:
    """Brace-matching function finder: an identifier, a balanced paren
    group, optional specifiers, then `{` at top level opens a function
    body. Good enough for this codebase's clang-format style."""
    functions = []
    i = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        if tok.kind == "id" and i + 1 < n and tokens[i + 1].text == "(" \
                and tok.text not in CONTROL_KEYWORDS:
            close = match_forward(tokens, i + 1, "(", ")")
            j = close
            # Skip trailing specifiers between ')' and '{'.
            while j < n and (
                tokens[j].text in {"const", "noexcept", "override", "final",
                                   "mutable", "->", "&", "&&", "*"}
                or tokens[j].kind == "id"
                or tokens[j].text in {"::", "<", ">", ",", "(", ")", "[",
                                      "]"}
            ):
                if tokens[j].text == "(":
                    j = match_forward(tokens, j, "(", ")")
                    continue
                if tokens[j].text in {";", "{", "}"}:
                    break
                j += 1
            if j < n and tokens[j].text == "{":
                body_end = match_forward(tokens, j, "{", "}")
                name = tok.text
                if i >= 2 and tokens[i - 1].text == "::":
                    name = tokens[i - 2].text + "::" + name
                fn = FunctionInfo(name=name, path=path, line=tok.line,
                                  tokens=tokens[j:body_end])
                functions.append(fn)
                i = body_end
                continue
            i = close
            continue
        i += 1
    return functions


def analyze_function_body(fn: FunctionInfo, rel_path: str):
    """Populates loops, lock scopes and the call set from body tokens."""
    toks = fn.tokens
    n = len(toks)
    loop_depth_stack = []  # end indices of active loop bodies

    i = 0
    while i < n:
        t = toks[i]
        # Pop loops whose bodies we have left.
        while loop_depth_stack and i >= loop_depth_stack[-1]:
            loop_depth_stack.pop()

        if t.kind == "id" and t.text in {"for", "while"}:
            header_end = i + 1
            if header_end < n and toks[header_end].text == "(":
                header_end = match_forward(toks, header_end, "(", ")")
            body_end = _statement_end(toks, header_end)
            fn.loops.append(Loop(t.text, t.line, (i + 1, body_end),
                                 len(loop_depth_stack)))
            loop_depth_stack.append(body_end)
            i = header_end
            continue
        if t.kind == "id" and t.text == "do":
            body_end = _statement_end(toks, i + 1)
            fn.loops.append(Loop("do", t.line, (i + 1, body_end),
                                 len(loop_depth_stack)))
            loop_depth_stack.append(body_end)
            i += 1
            continue

        if t.kind == "id" and t.text in {"MutexLock", "ReaderMutexLock"}:
            # MutexLock <var>(<expr>);  — scope runs to the end of the
            # enclosing block, or to an explicit <var>.Unlock().
            if i + 2 < n and toks[i + 1].kind == "id" \
                    and toks[i + 2].text == "(":
                var = toks[i + 1].text
                arg_end = match_forward(toks, i + 2, "(", ")")
                arg_text = "".join(x.text for x in toks[i + 3:arg_end - 1])
                rank = _lock_rank(arg_text, rel_path)
                if rank is not None:
                    end = _enclosing_block_end(toks, i)
                    for k in range(arg_end, end):
                        if toks[k].kind == "id" and toks[k].text == var \
                                and k + 2 < n \
                                and toks[k + 1].text == "." \
                                and toks[k + 2].text == "Unlock":
                            end = k
                            break
                    fn.locks.append(LockScope(rank[0], rank[1], t.line,
                                              i, end))
                i = arg_end
                continue

        if t.kind == "id" and i + 1 < n and toks[i + 1].text == "(" \
                and t.text not in CONTROL_KEYWORDS:
            fn.calls.add(t.text)
        i += 1


def _statement_end(toks, i):
    """End (exclusive) of the statement starting at token i: a balanced
    brace block, or everything up to the next top-level ';'."""
    n = len(toks)
    while i < n and toks[i].text not in {"{", ";"}:
        if toks[i].text == "(":
            i = match_forward(toks, i, "(", ")")
            continue
        i += 1
    if i < n and toks[i].text == "{":
        return match_forward(toks, i, "{", "}")
    return min(i + 1, n)


def _enclosing_block_end(toks, i):
    """End of the innermost brace block containing token i."""
    depth = 0
    j = i
    n = len(toks)
    while j < n:
        t = toks[j].text
        if t == "{":
            depth += 1
        elif t == "}":
            if depth == 0:
                return j
            depth -= 1
        j += 1
    return n


def _lock_rank(arg_text: str, rel_path: str):
    for pattern, rank, label in LOCK_RANKS:
        if pattern.search(arg_text):
            return rank, label
    if rel_path.endswith(DEVICE_FILES) and DEVICE_MU[0].search(arg_text):
        return DEVICE_MU[1], DEVICE_MU[2]
    return None


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

def try_clang_backend():
    """Returns a libclang Index if the bindings and shared object load."""
    try:
        from clang import cindex  # noqa: PLC0415
    except ImportError:
        return None
    try:
        return cindex.Index.create()
    except Exception:  # Missing/old libclang: fall back silently.
        return None


def build_ir_clang(index, path: str, rel: str, compile_args: list):
    """Lifts the same FunctionInfo IR from a real Clang parse. Token
    streams come from the lexer over each function's extent, so the
    downstream checks are byte-for-byte the microparse ones."""
    from clang import cindex  # noqa: PLC0415

    tu = index.parse(path, args=compile_args,
                     options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES
                     & 0)  # full bodies
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    _, nolint = strip_comments_and_strings(text)
    functions = []
    fn_kinds = {
        cindex.CursorKind.FUNCTION_DECL,
        cindex.CursorKind.CXX_METHOD,
        cindex.CursorKind.CONSTRUCTOR,
        cindex.CursorKind.DESTRUCTOR,
        cindex.CursorKind.FUNCTION_TEMPLATE,
    }
    for cursor in tu.cursor.walk_preorder():
        if cursor.kind not in fn_kinds or not cursor.is_definition():
            continue
        if cursor.location.file is None \
                or os.path.realpath(cursor.location.file.name) \
                != os.path.realpath(path):
            continue
        toks = [Token("id" if t.kind == cindex.TokenKind.IDENTIFIER
                      else "num" if t.kind == cindex.TokenKind.LITERAL
                      else "punct", t.spelling, t.location.line)
                for t in cursor.get_tokens()]
        # Trim to the body: first top-level '{'.
        for bi, t in enumerate(toks):
            if t.text == "{":
                toks = toks[bi:]
                break
        else:
            continue
        fn = FunctionInfo(name=cursor.spelling, path=path,
                          line=cursor.location.line, tokens=toks)
        analyze_function_body(fn, rel)
        functions.append(fn)
    return functions, nolint, text


def build_ir_micro(path: str, rel: str):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    clean, nolint = strip_comments_and_strings(text)
    tokens = tokenize(clean)
    functions = extract_functions(path, tokens)
    for fn in functions:
        analyze_function_body(fn, rel)
    return functions, nolint, text


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------

def is_time_name(name: str) -> bool:
    parts = [p for p in re.split(r"[_\d]+", name.lower()) if p]
    return any(p in TIME_NAME_COMPONENTS for p in parts)


def check_time_width(fn: FunctionInfo, findings, rel):
    toks = fn.tokens
    n = len(toks)
    narrow_time_vars = {}  # name -> decl line (32-bit, time-named)
    i = 0
    while i < n:
        t = toks[i]
        # static_cast<NARROW>(... raw_seconds ...)
        if t.kind == "id" and t.text == "static_cast" and i + 1 < n \
                and toks[i + 1].text == "<":
            close = i + 2
            while close < n and toks[close].text != ">":
                close += 1
            target = " ".join(x.text for x in toks[i + 2:close])
            if close + 1 < n and toks[close + 1].text == "(" \
                    and target.split()[-1] in NARROW_TYPES:
                arg_end = match_forward(toks, close + 1, "(", ")")
                arg = toks[close + 2:arg_end - 1]
                if any(a.text == "raw_seconds" for a in arg):
                    findings.append(Finding(
                        rel, t.line, "time-width",
                        f"static_cast<{target}> of a compute-tier "
                        "raw_seconds() value; narrow through "
                        "ToStoredTime/SaturatingToStoredTime/"
                        "CheckedBucketOf instead"))
                i = arg_end
                continue

        # NARROW <name> = <expr containing raw_seconds()>;
        if t.kind == "id" and t.text in NARROW_TYPES and i + 1 < n \
                and toks[i + 1].kind == "id":
            name_tok = toks[i + 1]
            j = i + 2
            if j < n and toks[j].text == "=":
                end = j
                while end < n and toks[end].text != ";":
                    end += 1
                init = toks[j + 1:end]
                if any(x.text == "raw_seconds" for x in init):
                    findings.append(Finding(
                        rel, name_tok.line, "time-width",
                        f"32-bit variable '{name_tok.text}' initialized "
                        "from compute-tier seconds; keep time arithmetic "
                        "in int64 (EventTime/Duration) and narrow only "
                        "through the checked boundary functions"))
                    i = end
                    continue
            if is_time_name(name_tok.text):
                narrow_time_vars[name_tok.text] = name_tok.line
        i += 1

    # Accumulation into a 32-bit time-named variable: the event-clock /
    # bucket-edge overflow shape (`int32 clock; ... clock += headway;`).
    for name, decl_line in narrow_time_vars.items():
        for i in range(len(toks)):
            if toks[i].kind != "id" or toks[i].text != name:
                continue
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            accumulate = nxt in {"+=", "-=", "*=", "++", "--"}
            if not accumulate and nxt == "=" and i + 3 < len(toks) \
                    and toks[i + 2].text == name \
                    and toks[i + 3].text in {"+", "-", "*"}:
                accumulate = True
            if accumulate:
                findings.append(Finding(
                    rel, toks[i].line, "time-width",
                    f"32-bit time accumulator '{name}' (declared line "
                    f"{decl_line}): this is the int32 event-clock "
                    "overflow bug class; use EventTime/Duration"))
                break


def build_checkpoint_summary(functions_by_name: dict) -> dict:
    """name -> True if calling the function reaches a checkpoint."""
    summary = {}

    def reaches(name, stack):
        if name in CHECKPOINT_FUNCTIONS:
            return True
        if name in summary:
            return summary[name]
        if name in stack or name not in functions_by_name:
            return False
        stack.add(name)
        result = any(
            reaches(callee, stack)
            for fn in functions_by_name[name]
            for callee in fn.calls
        )
        stack.discard(name)
        summary[name] = result
        return result

    for name in functions_by_name:
        reaches(name, set())
    return summary


def check_checkpoint(fn: FunctionInfo, findings, rel, summary, nolint):
    for loop in fn.loops:
        if loop.depth != 0:
            continue  # Inner loops are covered by their outermost loop.
        body = fn.tokens[loop.body[0]:loop.body[1]]
        ok = False
        for i, t in enumerate(body):
            if t.kind != "id":
                continue
            if t.text in CHECKPOINT_FUNCTIONS:
                ok = True
                break
            if i + 1 < len(body) and body[i + 1].text == "(" \
                    and summary.get(t.text, False):
                ok = True
                break
        if ok:
            continue
        if "bounded" in nolint.get(loop.line, set()) \
                or "bounded" in nolint.get(loop.line - 1, set()):
            continue
        findings.append(Finding(
            rel, loop.line, "checkpoint",
            f"outermost {loop.keyword}-loop in {fn.name}() never reaches "
            "a QueryContext deadline checkpoint; call "
            "CheckQueryCheckpoint() in the loop (or annotate a "
            "structurally bounded loop with `// analyzer: bounded(<why>)`)"))


def check_guard_escape(fn: FunctionInfo, findings, rel):
    toks = fn.tokens
    n = len(toks)
    guard_vars = set()
    page_ptrs = {}  # var name -> line, derived from a guard in this frame
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text == "PageGuard" and i + 1 < n \
                and toks[i + 1].kind == "id":
            guard_vars.add(toks[i + 1].text)

    i = 0
    while i < n:
        t = toks[i]
        # <v> = <guard>.get() / auto* v = guard.get() / const Page* v = ...
        if t.kind == "id" and t.text in guard_vars and i + 2 < n \
                and toks[i + 1].text == "." and toks[i + 2].text == "get":
            # Find the variable this expression binds to (scan backwards
            # over `=` to the preceding identifier).
            j = i - 1
            if j >= 0 and toks[j].text == "=" and j >= 1 \
                    and toks[j - 1].kind == "id":
                page_ptrs[toks[j - 1].text] = t.line
            # return guard.get();  — escapes the frame with the pin dying.
            if j >= 0 and toks[j].text == "return":
                findings.append(Finding(
                    rel, t.line, "guard-escape",
                    f"returning {t.text}.get(): the raw Page* outlives "
                    "the PageGuard pin; return the PageGuard itself"))
            i += 3
            continue
        i += 1

    for name, line in page_ptrs.items():
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text != name:
                continue
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < n else ""
            if prev == "return":
                findings.append(Finding(
                    rel, t.line, "guard-escape",
                    f"returning '{name}' (a Page* obtained from a "
                    "PageGuard at line {0}); the pin dies with the "
                    "frame".format(line)))
                break
            if nxt == "=" or (prev == "=" and i >= 2
                              and toks[i - 2].kind == "id"
                              and toks[i - 2].text.endswith("_")):
                if prev == "=" and toks[i - 2].text.endswith("_"):
                    findings.append(Finding(
                        rel, t.line, "guard-escape",
                        f"storing '{name}' (a Page* from a PageGuard) "
                        "into a member: the object outlives the pin"))
                    break
            if prev == "(" and i >= 2 and toks[i - 2].kind == "id" \
                    and toks[i - 2].text in {"push_back", "emplace_back",
                                             "insert", "emplace"}:
                findings.append(Finding(
                    rel, t.line, "guard-escape",
                    f"storing '{name}' (a Page* from a PageGuard) into a "
                    "container: the container outlives the pin"))
                break


def build_lock_summary(functions_by_name: dict) -> dict:
    """name -> set of ranks the function may acquire (transitively)."""
    summary = {}

    def ranks(name, stack):
        if name in summary:
            return summary[name]
        if name in stack or name not in functions_by_name:
            return set()
        stack.add(name)
        acquired = set()
        for fn in functions_by_name[name]:
            acquired |= {lock.rank for lock in fn.locks}
            for callee in fn.calls:
                acquired |= ranks(callee, stack)
        stack.discard(name)
        summary[name] = acquired
        return acquired

    for name in functions_by_name:
        ranks(name, set())
    return summary


def check_lock_order(fn: FunctionInfo, findings, rel, summary):
    toks = fn.tokens
    for lock in fn.locks:
        held = lock.rank
        i = lock.start + 3
        while i < lock.end:
            t = toks[i]
            if t.kind == "id" and t.text in {"MutexLock", "ReaderMutexLock"} \
                    and i + 2 < len(toks) and toks[i + 2].text == "(":
                arg_end = match_forward(toks, i + 2, "(", ")")
                arg = "".join(x.text for x in toks[i + 3:arg_end - 1])
                rank = _lock_rank(arg, rel)
                if rank is not None and rank[0] <= held:
                    findings.append(Finding(
                        rel, t.line, "lock-order",
                        f"acquiring {rank[1]} (rank {rank[0]}) while "
                        f"holding {lock.label} (rank {held}); the "
                        "hierarchy descends sets_mu_ -> shard latch -> "
                        "device mu_"))
                i = arg_end
                continue
            if t.kind == "id" and i + 1 < len(toks) \
                    and toks[i + 1].text == "(" \
                    and t.text not in CONTROL_KEYWORDS:
                callee_ranks = summary.get(t.text, set())
                bad = {r for r in callee_ranks if r <= held}
                if bad:
                    findings.append(Finding(
                        rel, t.line, "lock-order",
                        f"call to {t.text}() while holding {lock.label} "
                        f"(rank {held}): callee may acquire rank "
                        f"{min(bad)} — the hierarchy descends "
                        "sets_mu_ -> shard latch -> device mu_"))
            i += 1


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def allowed(check: str, rel_path: str) -> bool:
    return any(rel_path.endswith(suffix)
               for suffix in ALLOWLIST.get(check, []))


def collect_files(paths, compile_db):
    files = []
    seen = set()

    def add(path):
        real = os.path.realpath(path)
        if real in seen:
            return
        seen.add(real)
        files.append(path)

    for path in paths:
        if os.path.isfile(path):
            add(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if not d.startswith(SKIP_DIR_PREFIXES))
                for name in sorted(names):
                    if os.path.splitext(name)[1] in CXX_EXTENSIONS:
                        add(os.path.join(root, name))
        else:
            print(f"ptldb_analyzer: no such file or directory: {path}",
                  file=sys.stderr)
            sys.exit(2)
    # The compile database widens the universe (e.g. generated TUs), but
    # only to files under an analyzed root.
    roots = [os.path.realpath(p) for p in paths if os.path.isdir(p)]
    for entry in compile_db:
        src = entry.get("file", "")
        if not os.path.isabs(src):
            src = os.path.join(entry.get("directory", ""), src)
        real = os.path.realpath(src)
        if any(real.startswith(r + os.sep) for r in roots) \
                and os.path.isfile(real):
            add(real)
    return files


def compile_args_for(entry) -> list:
    args = entry.get("arguments")
    if not args:
        args = entry.get("command", "").split()
    keep = []
    skip_next = False
    for a in args[1:]:
        if skip_next:
            skip_next = False
            continue
        if a in {"-c", "-o"}:
            skip_next = a == "-o"
            continue
        if a.endswith((".cc", ".cpp", ".cxx", ".o")):
            continue
        keep.append(a)
    return keep


def analyze_paths(paths, checks=None, compile_db=None, db_by_file=None,
                  use_clang=True):
    """Runs the selected checks over `paths`; returns (findings, n_files,
    backend). This is the whole analysis minus argv handling and printing,
    so the selftest drives it directly on fixture trees."""
    checks = checks or CHECK_NAMES
    compile_db = compile_db or []
    db_by_file = db_by_file or {}
    files = collect_files(paths, compile_db)
    repo_root = os.getcwd()

    clang_index = try_clang_backend() if use_clang else None
    backend = "libclang" if clang_index is not None else "microparse"

    # Pass 1: build the IR for every file (needed before any flow check —
    # the call graph crosses files).
    per_file = []  # (rel, functions, nolint)
    functions_by_name: dict[str, list] = {}
    for path in files:
        rel = os.path.relpath(path, repo_root)
        functions = None
        if clang_index is not None:
            entry = db_by_file.get(os.path.realpath(path))
            if entry is not None:
                try:
                    functions, nolint, _ = build_ir_clang(
                        clang_index, path, rel, compile_args_for(entry))
                except Exception:
                    functions = None
        if functions is None:
            functions, nolint, _ = build_ir_micro(path, rel)
        per_file.append((rel, functions, nolint))
        for fn in functions:
            functions_by_name.setdefault(fn.name.split("::")[-1],
                                         []).append(fn)

    checkpoint_summary = build_checkpoint_summary(functions_by_name)
    lock_summary = build_lock_summary(functions_by_name)

    findings = []
    for rel, functions, nolint in per_file:
        file_findings = []
        for fn in functions:
            if "time-width" in checks and not allowed("time-width", rel):
                check_time_width(fn, file_findings, rel)
            if "checkpoint" in checks \
                    and any(rel.endswith(p) for p in CHECKPOINT_PATHS):
                check_checkpoint(fn, file_findings, rel,
                                 checkpoint_summary, nolint)
            if "guard-escape" in checks \
                    and not allowed("guard-escape", rel):
                check_guard_escape(fn, file_findings, rel)
            if "lock-order" in checks and not allowed("lock-order", rel):
                check_lock_order(fn, file_findings, rel, lock_summary)
        for f in file_findings:
            suppressed = nolint.get(f.line, set())
            if "*" in suppressed or f.check in suppressed:
                continue
            findings.append(f)

    findings.sort(key=lambda f: (f.path, f.line, f.check))
    return findings, len(files), backend


def main(argv):
    parser = argparse.ArgumentParser(
        prog="ptldb_analyzer",
        usage="%(prog)s [-p COMPILE_DB] [--check NAME ...] PATH [PATH ...]",
        add_help=True)
    parser.add_argument("-p", "--compile-db", default=None,
                        help="compile_commands.json (or its directory)")
    parser.add_argument("--check", action="append", choices=CHECK_NAMES,
                        help="run only the named check(s)")
    parser.add_argument("--list-checks", action="store_true")
    parser.add_argument("paths", nargs="*")
    args = parser.parse_args(argv)

    if args.list_checks:
        print(CHECK_DOC, end="")
        return 0
    if not args.paths:
        print(CHECK_DOC, file=sys.stderr)
        return 2

    compile_db = []
    db_by_file = {}
    if args.compile_db:
        db_path = args.compile_db
        if os.path.isdir(db_path):
            db_path = os.path.join(db_path, "compile_commands.json")
        if not os.path.isfile(db_path):
            print(f"ptldb_analyzer: no compile database at {db_path}",
                  file=sys.stderr)
            return 2
        with open(db_path, encoding="utf-8") as f:
            compile_db = json.load(f)
        for entry in compile_db:
            src = entry.get("file", "")
            if not os.path.isabs(src):
                src = os.path.join(entry.get("directory", ""), src)
            db_by_file[os.path.realpath(src)] = entry

    findings, n_files, backend = analyze_paths(
        args.paths, checks=args.check, compile_db=compile_db,
        db_by_file=db_by_file)
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.check}] {f.message}")
    print(f"ptldb_analyzer[{backend}]: "
          f"{len(findings)} finding(s) in {n_files} file(s)",
          file=sys.stderr if findings else sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
