#!/usr/bin/env python3
"""PTLDB project linter: PTLDB-specific invariants clang-tidy cannot express.

Rules (suppress one occurrence with `// NOLINT` or `// NOLINT(<rule>)`):

  void-cast-status     Bare `(void)expr` / `static_cast<void>(expr)` casts.
                       They silence [[nodiscard]] on Status/Result without
                       leaving a searchable record; intentional drops must go
                       through PTLDB_IGNORE_STATUS(expr) (common/status.h).

  naked-mutex          `std::mutex` / `std::lock_guard` / `std::unique_lock` /
                       `std::condition_variable` etc. outside
                       src/common/thread_annotations.h. Only the annotated
                       Mutex/MutexLock/CondVar wrappers carry the capability
                       attributes Clang Thread Safety Analysis checks, so a
                       naked standard mutex is an unanalyzed lock.

  page-pointer-escape  A raw `const Page*` binding (variable or member)
                       outside the buffer-pool internals. Page bytes are only
                       valid while a PageGuard pin is alive; storing the raw
                       pointer recreates the use-after-evict bug the guards
                       eliminated. Hold the PageGuard instead.

  ttl-nondeterminism   Nondeterministic sources (random_device, rand/srand,
                       wall-clock time, getenv) in TTL build paths. The TTL
                       index must be byte-identical for every thread count
                       and every run; monotonic steady_clock timing for
                       progress metrics is fine, data-affecting entropy is
                       not.

  unbounded-wait       An unbounded blocking wait on the serving request
                       path (src/server/, src/engine/exec*): CondVar::Wait
                       or ThreadPool::Wait with no timeout, or a
                       std::future/promise (whose .get()/.wait() block
                       forever). A worker parked on an unbounded wait can
                       sleep through shutdown or a lost notify and wedge
                       the queue; every wait there must be bounded
                       (CondVar::WaitFor / WaitUntil inside a predicate
                       loop that re-checks stop/deadline state each tick).

  raw-diagnostic       Raw diagnostic output (`fprintf`, `printf`, `puts`,
                       `fputs`, `std::cerr`, `std::cout`, `std::clog`) in
                       library code under src/. A library must not write to
                       the process's streams behind its caller's back:
                       diagnostics belong in Status messages, the metrics
                       registry, the query log or the trace tree, all of
                       which are queryable (system tables, Prometheus text)
                       instead of lost to a console. `snprintf` into a
                       buffer is string formatting, not output, and is fine.

  vm-hot-path-alloc    Heap allocation in the compiled-VM hot path
                       (src/engine/vm.h, src/ptldb/compiled.*): `new`,
                       make_unique/make_shared, or std-container growth
                       (push_back / emplace / resize / reserve). The warm
                       VM query path must carve every byte of scratch from
                       the per-request bump arena (src/engine/arena.h,
                       the one sanctioned allocation point), which resets
                       in O(1); a stray container or naked new silently
                       reintroduces steady-state heap traffic that the
                       bench allocation gate only catches much later.

  value-on-temporary   `.value()` chained directly onto a freshly returned
                       Result temporary (`Fetch(id).value()`): nothing checked
                       ok() first, so a fault becomes an assert/UB instead of
                       a propagated Status. `std::move(checked).value()` after
                       an ok() check is the sanctioned unwrap idiom and is
                       allowed.

Exit status: 0 when clean, 1 when findings were printed, 2 on usage errors.
Usage: ptldb_lint.py [--list-rules] <file-or-dir>...
"""

import os
import re
import sys

CXX_EXTENSIONS = {".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx"}
SKIP_DIR_PREFIXES = ("build", "bench_cache", ".git", "results")

# Files allowed to break specific rules (repo-relative path suffixes).
ALLOWLIST = {
    # The one definition point of the sanctioned static_cast<void>.
    "void-cast-status": ["src/common/status.h"],
    # The wrappers themselves wrap the naked primitives.
    "naked-mutex": ["src/common/thread_annotations.h"],
    # Buffer-pool internals manage raw frames under the shard latch;
    # page/pager/device define and transport Page objects themselves.
    "page-pointer-escape": [
        "src/engine/buffer_pool.h",
        "src/engine/page.h",
        "src/engine/pager.h",
        "src/engine/device.h",
    ],
    # The checked-narrowing abort path: the process is about to die on a
    # corrupt-index invariant, and stderr is the only channel that still
    # exists on the way into std::abort().
    "raw-diagnostic": ["src/common/time_types.cc"],
}

# Paths whose build output must be bit-reproducible.
DETERMINISTIC_PATHS = ["src/ttl/", "src/timetable/generator"]

# Paths on the serving request path, where every blocking wait must be
# bounded (see the unbounded-wait rule).
REQUEST_WAIT_PATHS = ["src/server/", "src/engine/exec"]

# The compiled-VM hot path, where all scratch must come from the arena
# (see the vm-hot-path-alloc rule). arena.h itself is the sanctioned
# allocation point and is deliberately not listed.
VM_HOT_PATHS = ["src/engine/vm.h", "src/ptldb/compiled.h",
                "src/ptldb/compiled.cc"]

RE_VOID_CAST = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_:(]|static_cast\s*<\s*void\s*>")
RE_NAKED_MUTEX = re.compile(
    r"std\s*::\s*(?:recursive_|timed_|shared_|recursive_timed_|shared_timed_)?"
    r"(?:mutex|lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable(?:_any)?)\b"
)
RE_PAGE_PTR = re.compile(r"\bconst\s+Page\s*\*|\bPage\s+const\s*\*")
RE_NONDETERMINISM = re.compile(
    r"std\s*::\s*random_device|\b(?:s?rand)\s*\(|system_clock\b|"
    r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)|\bgetenv\s*\("
)
RE_VALUE_CALL = re.compile(r"\)\s*\.\s*value\s*\(\s*\)")
# \b keeps snprintf/vsnprintf (buffer formatting) from matching printf.
RE_RAW_DIAGNOSTIC = re.compile(
    r"\b(?:fprintf|printf|vfprintf|vprintf|puts|fputs|putc|putchar|"
    r"perror)\s*\(|std\s*::\s*(?:cerr|cout|clog)\b"
)
# `.Wait(` / `->Wait(` only: `WaitFor(` / `WaitUntil(` have letters between
# the method name and the paren and do not match.
RE_UNBOUNDED_WAIT = re.compile(
    r"(?:\.|->)\s*Wait\s*\(|"
    r"\bstd\s*::\s*(?:future|promise|packaged_task|latch|barrier|"
    r"counting_semaphore|binary_semaphore)\b"
)
# `new` as an allocation: the keyword itself (placement new included —
# the arena is the only sanctioned placement target and lives elsewhere).
RE_VM_ALLOC = re.compile(
    r"\bnew\b|\bmake_unique\s*<|\bmake_shared\s*<|"
    r"(?:\.|->)\s*(?:push_back|emplace_back|emplace|resize|reserve)\s*\("
)
RE_NOLINT = re.compile(r"//\s*NOLINT(?:\(([^)]*)\))?")


def strip_comments_and_strings(text):
    """Blanks out comment bodies and string/char literals, preserving layout.

    AST-lite: a single linear scan handling //, /* */, "..." and '...' with
    escapes. Replacement uses spaces so line/column arithmetic still holds.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and nxt == "*":
            j = i + 2
            while j < n and not (text[j] == "*" and j + 1 < n and text[j + 1] == "/"):
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            for k in (i, i + 1, j, j + 1):
                if k < n and text[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    out[j] = " "
                    j += 1
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            i = j + 1
        else:
            i += 1
    return "".join(out)


def allowed(rule, rel_path):
    return any(rel_path.endswith(suffix) for suffix in ALLOWLIST.get(rule, []))


def suppressed(raw_line, rule):
    m = RE_NOLINT.search(raw_line)
    if not m:
        return False
    names = m.group(1)
    return names is None or rule in [s.strip() for s in names.split(",")]


def preceding_call_is_move(line, close_paren_idx):
    """For `<ident>(...)` ending at close_paren_idx, is <ident> `move`?"""
    depth = 0
    i = close_paren_idx
    while i >= 0:
        if line[i] == ")":
            depth += 1
        elif line[i] == "(":
            depth -= 1
            if depth == 0:
                break
        i -= 1
    if i < 0:
        return False  # Open paren on an earlier line: be conservative, flag.
    j = i - 1
    while j >= 0 and line[j].isspace():
        j -= 1
    end = j + 1
    while j >= 0 and (line[j].isalnum() or line[j] == "_"):
        j -= 1
    return line[j + 1:end] == "move"


def lint_file(path, rel_path):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        print(f"{rel_path}: cannot read: {e}", file=sys.stderr)
        return [(rel_path, 0, "io-error", str(e))]
    stripped = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    findings = []

    def report(lineno, rule, message):
        if allowed(rule, rel_path):
            return
        if suppressed(raw_lines[lineno - 1], rule):
            return
        findings.append((rel_path, lineno, rule, message))

    deterministic = any(p in rel_path for p in DETERMINISTIC_PATHS)
    request_path = any(p in rel_path for p in REQUEST_WAIT_PATHS)
    vm_hot_path = any(rel_path.endswith(p) for p in VM_HOT_PATHS)

    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if RE_VOID_CAST.search(line):
            report(lineno, "void-cast-status",
                   "bare void cast; use PTLDB_IGNORE_STATUS(expr) for an "
                   "intentional Status/Result drop")
        if RE_NAKED_MUTEX.search(line):
            report(lineno, "naked-mutex",
                   "naked std synchronization primitive; use the annotated "
                   "Mutex/MutexLock/CondVar wrappers from "
                   "common/thread_annotations.h")
        if RE_PAGE_PTR.search(line):
            report(lineno, "page-pointer-escape",
                   "raw `const Page*` binding; page bytes are only valid "
                   "while a PageGuard pin is alive — hold the guard instead")
        if deterministic and RE_NONDETERMINISM.search(line):
            report(lineno, "ttl-nondeterminism",
                   "nondeterministic source in a deterministic build path; "
                   "TTL preprocessing must be byte-reproducible")
        if request_path and RE_UNBOUNDED_WAIT.search(line):
            report(lineno, "unbounded-wait",
                   "unbounded blocking wait on the serving request path; "
                   "use CondVar::WaitFor/WaitUntil in a predicate loop so "
                   "the waiter re-checks stop/deadline state every tick")
        if vm_hot_path and RE_VM_ALLOC.search(line):
            report(lineno, "vm-hot-path-alloc",
                   "heap allocation in the compiled-VM hot path; carve "
                   "scratch from the per-request arena (engine/arena.h) "
                   "so the warm path stays allocation-free")
        if RE_RAW_DIAGNOSTIC.search(line):
            report(lineno, "raw-diagnostic",
                   "raw stream/stdio output in library code; surface "
                   "diagnostics through Status, metrics, the query log or "
                   "the trace tree instead of writing to the console")
        for m in RE_VALUE_CALL.finditer(line):
            if not preceding_call_is_move(line, m.start()):
                report(lineno, "value-on-temporary",
                       ".value() on an unchecked temporary; check ok() "
                       "first, then unwrap with std::move(checked).value()")
    return findings


def iter_sources(paths):
    for top in paths:
        if os.path.isfile(top):
            yield top
            continue
        if not os.path.isdir(top):
            print(f"ptldb_lint: no such file or directory: {top}",
                  file=sys.stderr)
            sys.exit(2)
        for root, dirs, files in os.walk(top):
            dirs[:] = sorted(d for d in dirs
                             if not d.startswith(SKIP_DIR_PREFIXES))
            for name in sorted(files):
                if os.path.splitext(name)[1] in CXX_EXTENSIONS:
                    yield os.path.join(root, name)


def main(argv):
    args = [a for a in argv[1:] if a != "--list-rules"]
    if "--list-rules" in argv:
        for rule in ("void-cast-status", "naked-mutex", "page-pointer-escape",
                     "ttl-nondeterminism", "unbounded-wait", "raw-diagnostic",
                     "vm-hot-path-alloc", "value-on-temporary"):
            print(rule)
        return 0
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    cwd = os.getcwd()
    findings = []
    checked = 0
    for path in iter_sources(args):
        rel = os.path.relpath(path, cwd).replace(os.sep, "/")
        findings.extend(lint_file(path, rel))
        checked += 1
    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"ptldb_lint: {len(findings)} finding(s) in {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"ptldb_lint: clean ({checked} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
