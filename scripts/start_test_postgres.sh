#!/usr/bin/env bash
# Starts a throwaway PostgreSQL cluster for the PTLDB PostgreSQL-backend
# tests and benchmarks. The cluster listens on a Unix socket only (no TCP)
# and trusts local connections — test use only.
#
# Usage:  scripts/start_test_postgres.sh [datadir] [port]
# Then:   export PTLDB_PG_CONNINFO="host=<datadir> port=<port> dbname=postgres user=postgres"
# (the script prints the exact export line).
set -euo pipefail

DATA=${1:-/tmp/ptldb_pg}
PORT=${2:-5433}

BIN=$(dirname "$(command -v initdb || echo /usr/lib/postgresql/15/bin/initdb)")

run_as_postgres() {
  if [ "$(id -un)" = "postgres" ]; then
    bash -c "$1"
  elif [ "$(id -u)" = "0" ]; then
    su postgres -c "$1"
  else
    bash -c "$1"
  fi
}

if [ ! -s "$DATA/PG_VERSION" ]; then
  mkdir -p "$DATA"
  if [ "$(id -u)" = "0" ]; then chown postgres:postgres "$DATA"; fi
  run_as_postgres "'$BIN/initdb' -D '$DATA' -A trust" >/dev/null
fi

if ! run_as_postgres "'$BIN/pg_ctl' -D '$DATA' status" >/dev/null 2>&1; then
  run_as_postgres "'$BIN/pg_ctl' -D '$DATA' -l '$DATA/server.log' \
    -o \"-p $PORT -k '$DATA' -c listen_addresses=''\" -w start" >/dev/null
fi

echo "export PTLDB_PG_CONNINFO=\"host=$DATA port=$PORT dbname=postgres user=postgres\""
