#!/usr/bin/env bash
# Runs the full PTLDB reproduction benchmark suite (one binary per paper
# table/figure) and tees each output to results/. Binaries that support
# machine-readable run records (bench_table7, bench_micro) also write
# results/BENCH_<name>.json — per-phase latencies, the engine metrics
# snapshot and the git revision — validated by scripts/check_bench_json.py.
#
# Usage: scripts/run_benchmarks.sh [build-dir] [extra bench flags...]
set -euo pipefail
BUILD=${1:-build}
shift || true
mkdir -p results
for b in "$BUILD"/bench/bench_*; do
  name=$(basename "$b")
  echo "=== $name ==="
  if [ "$name" = "bench_micro" ]; then
    "$b" --benchmark_min_time=0.2 | tee "results/$name.txt"
    "$b" --json "results/BENCH_$name.json"
  elif [ "$name" = "bench_table7" ]; then
    "$b" "$@" --json "results/BENCH_$name.json" | tee "results/$name.txt"
  else
    "$b" "$@" | tee "results/$name.txt"
  fi
done
for j in results/BENCH_*.json; do
  [ -e "$j" ] || continue
  python3 "$(dirname "$0")/check_bench_json.py" "$j"
done
