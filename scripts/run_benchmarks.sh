#!/usr/bin/env bash
# Runs the full PTLDB reproduction benchmark suite (one binary per paper
# table/figure) and tees each output to results/.
#
# Usage: scripts/run_benchmarks.sh [build-dir] [extra bench flags...]
set -euo pipefail
BUILD=${1:-build}
shift || true
mkdir -p results
for b in "$BUILD"/bench/bench_*; do
  name=$(basename "$b")
  echo "=== $name ==="
  if [ "$name" = "bench_micro" ]; then
    "$b" --benchmark_min_time=0.2 | tee "results/$name.txt"
  else
    "$b" "$@" | tee "results/$name.txt"
  fi
done
